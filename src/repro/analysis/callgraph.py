"""Best-effort intra-package call graph over module summaries.

Resolution follows what a reader (or a type checker on a good day) can
see statically:

* bare names through the lexical scope chain — nested defs, module
  functions and classes, then the import map,
* imports through re-export chains (``from x import y as z`` in one
  module, ``from that import z`` in another) with a cycle guard,
* method calls through *class attribution*: ``self.journal.record_admit``
  types ``journal`` from the class's attribute map (annotations,
  dataclass fields, ``self.journal = JobJournal(...)``), then resolves
  ``record_admit`` through the class and its project bases,
* locals and parameters through their annotations or
  ``x = ClassName(...)`` assignments.

Anything else resolves to ``None`` (unknown) or to an *external* dotted
name such as ``time.sleep`` — externals are exactly what the blocking
registry of RPR009 matches against.  Unknowns are skipped: the graph
under-approximates, so project rules report only what they can prove a
path for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.analysis.project import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleSummary,
    ProjectContext,
)

#: Resolution outcome kinds.
KIND_FUNCTION = "function"  # a project function/method (graph node)
KIND_CLASS = "class"  # a project class (constructor with no __init__)
KIND_MODULE = "module"  # a project module object
KIND_EXTERNAL = "external"  # dotted name outside the linted tree

_MAX_CHASE = 32


@dataclass(frozen=True)
class ResolvedCall:
    """One call site plus where it leads."""

    site: CallSite
    #: ``KIND_*`` or ``None`` when the callee could not be resolved.
    kind: str | None
    #: Canonical fq target (``repro.service.journal.JobJournal._append``
    #: or an external like ``os.fsync``); ``None`` when unresolved.
    target: str | None


class CallGraph:
    """Resolved call graph over a :class:`ProjectContext`."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        #: fq function name -> (owning module summary, function info)
        self.functions: dict[str, tuple[ModuleSummary, FunctionInfo]] = {}
        #: fq class name -> (owning module summary, class info)
        self.classes: dict[str, tuple[ModuleSummary, ClassInfo]] = {}
        self._resolved: dict[str, tuple[ResolvedCall, ...]] = {}

    @classmethod
    def build(cls, project: ProjectContext) -> "CallGraph":
        graph = cls(project)
        for summary in project.modules.values():
            for fn in summary.functions:
                graph.functions[f"{summary.module}.{fn.name}"] = (summary, fn)
            for info in summary.classes.values():
                graph.classes[f"{summary.module}.{info.name}"] = (summary, info)
        return graph

    # -- symbol resolution --------------------------------------------------

    def _module_prefix(self, fq: str) -> str | None:
        """The longest linted-module prefix of ``fq``."""
        parts = fq.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.project.modules:
                return candidate
        return None

    def resolve_symbol(self, fq: str) -> tuple[str, str]:
        """Canonicalise a fully dotted name, chasing re-exports.

        Returns ``(kind, canonical_fq)`` with kind one of the
        ``KIND_*`` constants; names with no linted-module prefix are
        ``KIND_EXTERNAL`` verbatim.
        """
        seen: set[str] = set()
        for _ in range(_MAX_CHASE):
            if fq in seen:
                return (KIND_EXTERNAL, fq)
            seen.add(fq)
            mod = self._module_prefix(fq)
            if mod is None:
                return (KIND_EXTERNAL, fq)
            if fq == mod:
                return (KIND_MODULE, fq)
            summary = self.project.modules[mod]
            rest = fq[len(mod) + 1 :].split(".")
            sym = rest[0]
            if sym in summary.classes:
                cls_fq = f"{mod}.{sym}"
                if len(rest) == 1:
                    return (KIND_CLASS, cls_fq)
                if len(rest) == 2:
                    method = self.resolve_method(cls_fq, rest[1])
                    if method is not None:
                        return (KIND_FUNCTION, method)
                return (KIND_EXTERNAL, fq)
            if summary.function(sym) is not None:
                if len(rest) == 1:
                    return (KIND_FUNCTION, f"{mod}.{sym}")
                return (KIND_EXTERNAL, fq)
            if sym in summary.imports:
                tail = "." + ".".join(rest[1:]) if len(rest) > 1 else ""
                fq = summary.imports[sym] + tail
                continue
            if sym in summary.module_types and len(rest) == 2:
                # Module-level instance: `tracer = Tracer()` elsewhere,
                # then `tracer.record_span(...)` through an import.
                cls_fq = self.resolve_type(summary, summary.module_types[sym])
                if cls_fq is not None:
                    method = self.resolve_method(cls_fq, rest[1])
                    if method is not None:
                        return (KIND_FUNCTION, method)
            return (KIND_EXTERNAL, fq)
        return (KIND_EXTERNAL, fq)

    def resolve_type(
        self, summary: ModuleSummary, raw: str, _depth: int = 0
    ) -> str | None:
        """Resolve raw type text to a *project* class fq, else ``None``."""
        if _depth > _MAX_CHASE:
            return None
        parts = raw.split(".")
        head = parts[0]
        if head in summary.classes and len(parts) == 1:
            return f"{summary.module}.{head}"
        if head in summary.imports:
            tail = "." + ".".join(parts[1:]) if len(parts) > 1 else ""
            kind, fq = self.resolve_symbol(summary.imports[head] + tail)
            return fq if kind == KIND_CLASS else None
        return None

    def external_type(self, summary: ModuleSummary, raw: str) -> str:
        """The fq text of a type that is not a project class.

        ``threading.Lock`` with ``import threading`` stays
        ``threading.Lock``; ``Lock`` with ``from threading import
        Lock`` becomes ``threading.Lock``.
        """
        parts = raw.split(".")
        head = parts[0]
        if head in summary.imports:
            tail = "." + ".".join(parts[1:]) if len(parts) > 1 else ""
            return summary.imports[head] + tail
        return raw

    def resolve_method(
        self, cls_fq: str, name: str, _depth: int = 0
    ) -> str | None:
        """Find ``name`` on the class or its project bases (best-effort MRO)."""
        if _depth > _MAX_CHASE or cls_fq not in self.classes:
            return None
        summary, info = self.classes[cls_fq]
        if name in info.methods:
            return f"{cls_fq}.{name}"
        for base_raw in info.bases:
            base_fq = self.resolve_type(summary, base_raw, _depth + 1)
            if base_fq is not None:
                found = self.resolve_method(base_fq, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def attr_type(self, cls_fq: str, attr: str, _depth: int = 0) -> str | None:
        """Project-class fq of attribute ``attr``, walking project bases."""
        if _depth > _MAX_CHASE or cls_fq not in self.classes:
            return None
        summary, info = self.classes[cls_fq]
        raw = info.attr_types.get(attr)
        if raw is not None:
            return self.resolve_type(summary, raw)
        for base_raw in info.bases:
            base_fq = self.resolve_type(summary, base_raw, _depth + 1)
            if base_fq is not None:
                found = self.attr_type(base_fq, attr, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- call resolution ----------------------------------------------------

    def _scope_chain(self, fn: FunctionInfo) -> list[str]:
        """Enclosing qualname prefixes, innermost first, '' last."""
        chain: list[str] = []
        qual = fn.name
        while qual:
            chain.append(qual)
            qual = qual.rsplit(".", 1)[0] if "." in qual else ""
        chain.append("")
        return chain

    def _constructor(self, cls_fq: str) -> tuple[str, str]:
        init = self.resolve_method(cls_fq, "__init__")
        if init is not None:
            return (KIND_FUNCTION, init)
        return (KIND_CLASS, cls_fq)

    def resolve_call(
        self, summary: ModuleSummary, fn: FunctionInfo, callee: str
    ) -> tuple[str | None, str | None]:
        """Resolve one raw callee within a function's scope.

        Returns ``(kind, target)``; ``(None, None)`` when unknown.
        """
        parts = callee.split(".")
        head = parts[0]
        rest = parts[1:]

        if head in ("self", "cls") and fn.cls is not None:
            cls_fq = f"{summary.module}.{fn.cls}"
            if len(rest) == 1:
                method = self.resolve_method(cls_fq, rest[0])
                return (KIND_FUNCTION, method) if method else (None, None)
            if len(rest) == 2:
                attr_cls = self.attr_type(cls_fq, rest[0])
                if attr_cls is not None:
                    method = self.resolve_method(attr_cls, rest[1])
                    if method is not None:
                        return (KIND_FUNCTION, method)
                # A non-project attribute type is still worth naming:
                # self._conn.request -> http.client.HTTPConnection.request.
                _, info = self.classes.get(cls_fq, (None, None))
                raw = info.attr_types.get(rest[0]) if info is not None else None
                if raw is not None and self.resolve_type(summary, raw) is None:
                    ext = self.external_type(summary, raw)
                    return (KIND_EXTERNAL, f"{ext}.{rest[1]}")
            return (None, None)

        # Typed locals and parameters: jobs.reserve() with jobs: JobStore.
        if head in fn.local_types:
            if len(rest) == 1:
                raw = fn.local_types[head]
                local_cls = self.resolve_type(summary, raw)
                if local_cls is not None:
                    method = self.resolve_method(local_cls, rest[0])
                    return (KIND_FUNCTION, method) if method else (None, None)
                ext = self.external_type(summary, raw)
                return (KIND_EXTERNAL, f"{ext}.{rest[0]}")
            return (None, None)

        if not rest:
            # Bare call: nested defs shadow module scope.
            for scope in self._scope_chain(fn):
                qual = f"{scope}.{head}" if scope else head
                if summary.function(qual) is not None:
                    return (KIND_FUNCTION, f"{summary.module}.{qual}")
            if head in summary.classes:
                return self._constructor(f"{summary.module}.{head}")
            if head in summary.imports:
                kind, fq = self.resolve_symbol(summary.imports[head])
                if kind == KIND_CLASS:
                    return self._constructor(fq)
                return (kind, fq)
            return (None, None)

        if head in summary.classes:
            if len(rest) == 1:
                method = self.resolve_method(f"{summary.module}.{head}", rest[0])
                return (KIND_FUNCTION, method) if method else (None, None)
            return (None, None)

        if head in summary.imports:
            kind, fq = self.resolve_symbol(summary.imports[head] + "." + ".".join(rest))
            if kind == KIND_CLASS:
                return self._constructor(fq)
            return (kind, fq)

        if head in summary.module_types:
            if len(rest) == 1:
                raw = summary.module_types[head]
                mod_cls = self.resolve_type(summary, raw)
                if mod_cls is not None:
                    method = self.resolve_method(mod_cls, rest[0])
                    return (KIND_FUNCTION, method) if method else (None, None)
                ext = self.external_type(summary, raw)
                return (KIND_EXTERNAL, f"{ext}.{rest[0]}")
            return (None, None)

        return (None, None)

    def resolved_calls(self, fq: str) -> tuple[ResolvedCall, ...]:
        """Every call site of function ``fq``, resolved (memoised)."""
        cached = self._resolved.get(fq)
        if cached is not None:
            return cached
        summary, fn = self.functions[fq]
        out = []
        for site in fn.calls:
            kind, target = self.resolve_call(summary, fn, site.callee)
            out.append(ResolvedCall(site=site, kind=kind, target=target))
        resolved = tuple(out)
        self._resolved[fq] = resolved
        return resolved

    def expr_type(
        self, summary: ModuleSummary, fn: FunctionInfo, expr: str
    ) -> str | None:
        """The fq type of a simple expression, project class or external.

        Used by the lock rule: ``self._lock`` -> ``threading.Lock``.
        """
        parts = expr.split(".")
        head = parts[0]
        raw: str | None = None
        owner = summary
        if head == "self" and fn.cls is not None and len(parts) == 2:
            cls_fq = f"{summary.module}.{fn.cls}"
            project_cls = self.attr_type(cls_fq, parts[1])
            if project_cls is not None:
                return project_cls
            _, info = self.classes.get(cls_fq, (None, None))
            raw = info.attr_types.get(parts[1]) if info is not None else None
        elif len(parts) == 1:
            raw = fn.local_types.get(head) or summary.module_types.get(head)
        if raw is None:
            return None
        project_cls = self.resolve_type(owner, raw)
        if project_cls is not None:
            return project_cls
        return self.external_type(owner, raw)

    # -- traversal ----------------------------------------------------------

    def async_roots(self) -> Iterator[tuple[str, ModuleSummary, FunctionInfo]]:
        """Every ``async def`` in the linted tree."""
        for fq, (summary, fn) in sorted(self.functions.items()):
            if fn.is_async:
                yield fq, summary, fn

    def is_async(self, fq: str) -> bool:
        entry = self.functions.get(fq)
        return entry is not None and entry[1].is_async

    # -- export -------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The ``repro lint --graph`` dump: nodes with resolved edges."""
        nodes = []
        for fq, (summary, fn) in sorted(self.functions.items()):
            edges = []
            for call in self.resolved_calls(fq):
                edges.append(
                    {
                        "raw": call.site.callee,
                        "target": call.target,
                        "kind": call.kind,
                        "line": call.site.line,
                        "awaited": call.site.awaited,
                        "via_executor": call.site.via_executor,
                        "detached": call.site.detached,
                    }
                )
            nodes.append(
                {
                    "function": fq,
                    "module": summary.module,
                    "path": summary.display_path,
                    "line": fn.line,
                    "async": fn.is_async,
                    "calls": edges,
                }
            )
        return {
            "version": 1,
            "functions": len(nodes),
            "modules": len(self.project.modules),
            "nodes": nodes,
        }
