"""Oldest-first out-of-order issue simulator.

Models the machine of the paper's queue study: 8-way issue, perfect
branch prediction, perfect caches, plentiful functional units.  With
those idealisations the machine is fully characterised by three
constraints, which the simulator applies as a single in-order greedy
pass (oldest-first list scheduling — exactly the policy a selection
tree of priority encoders implements):

1. **Dispatch** is in-order, ``dispatch_width`` per cycle, and only
   into a free queue entry: instruction ``i`` can dispatch once at
   least ``i - window + 1`` older instructions have issued (entries
   free at issue, out of order — the queue is a free list, not a FIFO).
2. **Wakeup**: an instruction is ready once all producers have
   completed (``issue + latency``); wakeup/select is atomic within a
   cycle, so dependent instructions can issue in consecutive cycles.
3. **Select**: at most ``issue_width`` instructions issue per cycle,
   oldest first.

The queue-occupancy constraint needs the k-th smallest issue time of
all older instructions with ``k`` growing by one per instruction; a
two-heap structure maintains it in O(log window) per instruction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.workloads.instruction_trace import NO_DEP, InstructionTrace


@dataclass(frozen=True)
class MachineConfig:
    """Machine parameters of the paper's queue study."""

    window: int
    issue_width: int = 8
    dispatch_width: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise SimulationError(f"window must be positive, got {self.window}")
        if self.issue_width < 1 or self.dispatch_width < 1:
            raise SimulationError("issue and dispatch width must be positive")


@dataclass(frozen=True)
class MachineResult:
    """Outcome of one simulation run."""

    config: MachineConfig
    n_instructions: int
    cycles: int
    issue_times: np.ndarray

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.n_instructions / self.cycles

    def tpi_ns(self, cycle_time_ns: float) -> float:
        """Average time per instruction at a given clock."""
        return cycle_time_ns / self.ipc


class _RunningKthSmallest:
    """Streaming k-th order statistic where k grows by one per step.

    ``low`` is a max-heap (negated) holding the k smallest values seen;
    ``high`` is a min-heap of the rest.  ``advance()`` grows k; ``add()``
    inserts a new value; ``kth()`` reads the current k-th smallest.
    """

    __slots__ = ("_low", "_high")

    def __init__(self) -> None:
        self._low: list[int] = []
        self._high: list[int] = []

    def add(self, value: int) -> None:
        if self._low and value < -self._low[0]:
            heapq.heappush(self._low, -value)
            heapq.heappush(self._high, -heapq.heappop(self._low))
        else:
            heapq.heappush(self._high, value)

    def advance(self) -> None:
        if not self._high:
            raise SimulationError("order statistic advanced past its population")
        heapq.heappush(self._low, -heapq.heappop(self._high))

    def kth(self) -> int:
        if not self._low:
            raise SimulationError("order statistic read before first advance")
        return -self._low[0]


class OutOfOrderMachine:
    """Greedy oldest-first scheduler for one :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    def run(self, trace: InstructionTrace, memory_system=None) -> MachineResult:
        """Simulate ``trace`` and return cycle counts and issue times.

        With ``memory_system`` (a
        :class:`repro.ooo.memory.CacheMemorySystem`) and a trace whose
        loads carry addresses, each load's latency comes from the cache
        hierarchy instead of the trace — the integrated simulation in
        which independent misses can overlap under the window.
        """
        window = self.config.window
        issue_width = self.config.issue_width
        dispatch_width = self.config.dispatch_width

        n = len(trace)
        dep1 = trace.dep1.tolist()
        dep2 = trace.dep2.tolist()
        latency = trace.latency.tolist()
        if memory_system is not None:
            if trace.load_address is None:
                raise SimulationError(
                    "memory_system given but the trace carries no load addresses"
                )
            addresses = trace.load_address.tolist()
            for i, addr in enumerate(addresses):
                if addr >= 0:
                    latency[i] = memory_system.load_latency_cycles(int(addr))

        issue = np.zeros(n, dtype=np.int64)
        issue_list = issue.tolist()  # python ints are faster in the loop
        dispatch_times: list[int] = [0] * n
        issue_counts: dict[int, int] = {}
        occupancy = _RunningKthSmallest()
        last_dispatch = 0

        for i in range(n):
            # -- dispatch: in-order, bandwidth-limited, queue-capacity-limited
            d = last_dispatch
            if i >= dispatch_width:
                earliest_by_bw = dispatch_times[i - dispatch_width] + 1
                if earliest_by_bw > d:
                    d = earliest_by_bw
            if i >= window:
                occupancy.advance()  # k becomes i - window + 1
                # the slot is reusable the cycle after its occupant issues
                free_at = occupancy.kth() + 1
                if free_at > d:
                    d = free_at
            dispatch_times[i] = d
            last_dispatch = d

            # -- wakeup: ready when all producers have completed
            ready = d
            p = dep1[i]
            if p != NO_DEP:
                t = issue_list[p] + latency[p]
                if t > ready:
                    ready = t
            p = dep2[i]
            if p != NO_DEP:
                t = issue_list[p] + latency[p]
                if t > ready:
                    ready = t

            # -- select: oldest-first, issue_width per cycle
            cycle = ready
            count = issue_counts.get(cycle, 0)
            while count >= issue_width:
                cycle += 1
                count = issue_counts.get(cycle, 0)
            issue_counts[cycle] = count + 1
            issue_list[i] = cycle
            occupancy.add(cycle)

        issue = np.array(issue_list, dtype=np.int64)
        completion = issue + trace.latency.astype(np.int64)
        cycles = int(completion.max()) + 1
        return MachineResult(
            config=self.config,
            n_instructions=n,
            cycles=cycles,
            issue_times=issue,
        )


def run_window_sweep(
    trace: InstructionTrace, windows: tuple[int, ...]
) -> dict[int, MachineResult]:
    """Run the same trace at every window size."""
    return {w: OutOfOrderMachine(MachineConfig(window=w)).run(trace) for w in windows}
