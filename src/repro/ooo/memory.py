"""Memory-system hook for the out-of-order machine.

The paper's queue study assumes perfect caches; its cache study assumes
a fixed-IPC pipeline.  Composing the two analytically (as the paper
does, and as :mod:`repro.experiments.extended_structures` does for the
concert study) charges every L1 miss as a full blocking stall.  This
module lets the machine simulate the two *together*: loads carry
addresses, the adaptive cache hierarchy resolves each one to a level,
and the machine sees the resulting latency — so independent misses can
overlap under the issue window, which the additive model forbids.

Used by :mod:`repro.experiments.validation` to quantify how
conservative the paper's blocking composition is.
"""

from __future__ import annotations

import math

from repro.cache.config import HierarchyConfig
from repro.cache.hierarchy import AccessLevel, TwoLevelExclusiveCache
from repro.cache.timing import CacheTimingModel, L1_LATENCY_CYCLES
from repro.errors import ConfigurationError


class CacheMemorySystem:
    """Resolves load addresses to latencies through the adaptive cache.

    Latencies are expressed in cycles of the configuration's own clock:
    an L1 hit costs the constant pipeline latency (already covered by
    the base schedule, so it maps to the generator's nominal 2-cycle
    load latency), an L2 hit costs the boundary's L2 latency, and a
    miss costs the 30 ns board-level access converted at the current
    cycle time.
    """

    def __init__(
        self,
        l1_increments: int,
        timing: CacheTimingModel | None = None,
    ) -> None:
        self.timing = timing if timing is not None else CacheTimingModel()
        geometry = self.timing.geometry
        if not 1 <= l1_increments < geometry.n_increments:
            raise ConfigurationError(f"bad boundary {l1_increments}")
        self.l1_increments = l1_increments
        self._cache = TwoLevelExclusiveCache(
            HierarchyConfig(geometry, l1_increments)
        )
        cycle = self.timing.cycle_time_ns(l1_increments)
        self._l2_latency = self.timing.l2_hit_latency_cycles(l1_increments)
        self._miss_latency = math.ceil(self.timing.miss_latency_ns() / cycle)
        self._counts = {AccessLevel.L1: 0, AccessLevel.L2: 0, AccessLevel.MISS: 0}

    @property
    def cycle_time_ns(self) -> float:
        """Clock period of this configuration."""
        return self.timing.cycle_time_ns(self.l1_increments)

    def load_latency_cycles(self, address: int) -> int:
        """Access the hierarchy; return the load-to-use latency."""
        level = self._cache.access(address)
        self._counts[level] += 1
        if level is AccessLevel.L1:
            return L1_LATENCY_CYCLES
        if level is AccessLevel.L2:
            return self._l2_latency
        return self._miss_latency

    @property
    def level_counts(self) -> dict[AccessLevel, int]:
        """Accesses resolved per level so far."""
        return dict(self._counts)

    def warm(self, addresses) -> None:
        """Touch a warm-up address stream without counting it.

        Plays the role the sheer length of the paper's traces plays:
        compulsory misses of structures that do fit are amortised away
        before measurement begins.
        """
        for addr in addresses:
            self._cache.access(int(addr))

    def reset_counts(self) -> None:
        """Zero the per-level counters (typically after :meth:`warm`)."""
        for level in self._counts:
            self._counts[level] = 0
