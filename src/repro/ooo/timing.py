"""Queue size to processor cycle time.

The paper assumes the queue's wakeup and selection logic is on the
critical timing path for *every* configuration (bypass delays being
reduced via clustering), so the processor clock follows the enabled
window size directly through the Palacharla model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tech.palacharla import IssueQueueTiming
from repro.tech.parameters import TechnologyParameters, technology

#: The paper's evaluated queue sizes: 16 to 128 entries in 16-entry
#: increments (the increment matching the tag-line buffering interval).
PAPER_QUEUE_SIZES: tuple[int, ...] = tuple(range(16, 129, 16))

#: The configuration increment (entries per enable/disable group).
QUEUE_INCREMENT: int = 16


@dataclass(frozen=True)
class QueueTimingModel:
    """Cycle times for each legal queue size."""

    tech: TechnologyParameters = field(default_factory=lambda: technology(0.18))
    sizes: tuple[int, ...] = PAPER_QUEUE_SIZES

    def __post_init__(self) -> None:
        bad = [s for s in self.sizes if s % QUEUE_INCREMENT or s <= 0]
        if bad:
            raise ConfigurationError(
                f"queue sizes must be positive multiples of {QUEUE_INCREMENT}: {bad}"
            )

    def cycle_time_ns(self, window: int) -> float:
        """Clock period when ``window`` entries are enabled."""
        if window not in self.sizes:
            raise ConfigurationError(
                f"window {window} not in configured sizes {self.sizes}"
            )
        return IssueQueueTiming(self.tech).cycle_time_ns(window)

    def cycle_table(self) -> dict[int, float]:
        """Cycle time for every configured size."""
        return {w: self.cycle_time_ns(w) for w in self.sizes}
