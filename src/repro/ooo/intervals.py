"""Per-interval TPI sampling (the Section 6 snapshots).

The paper examines intra-application diversity by plotting the average
TPI of two queue configurations over consecutive 2000-instruction
intervals (Figures 12 and 13).  Given a machine run's per-instruction
issue times, the time an interval took is the difference between the
issue times of its last instruction and the previous interval's last
instruction, so one simulation per configuration yields the whole
series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.ooo.machine import MachineResult

#: Interval length used throughout the paper's Section 6.
PAPER_INTERVAL_INSTRUCTIONS: int = 2000


@dataclass(frozen=True)
class IntervalSeries:
    """TPI of one configuration over consecutive instruction intervals."""

    window: int
    cycle_time_ns: float
    interval_instructions: int
    tpi_ns: np.ndarray

    def __len__(self) -> int:
        return len(self.tpi_ns)

    def mean_tpi_ns(self) -> float:
        """Average TPI over the whole series."""
        return float(self.tpi_ns.mean())


def interval_tpi_series(
    result: MachineResult,
    cycle_time_ns: float,
    interval_instructions: int = PAPER_INTERVAL_INSTRUCTIONS,
) -> IntervalSeries:
    """Convert a machine run into a per-interval TPI series.

    Only whole intervals are reported (a trailing partial interval is
    dropped, as in the paper's plots).
    """
    if interval_instructions < 1:
        raise SimulationError("interval length must be positive")
    n = result.n_instructions
    n_intervals = n // interval_instructions
    if n_intervals == 0:
        raise SimulationError(
            f"trace of {n} instructions is shorter than one interval "
            f"({interval_instructions})"
        )
    # Issue is out of order, so a younger instruction can issue before an
    # older one; the time an interval *finished* is the running maximum
    # of issue times up to its last instruction.
    frontier = np.maximum.accumulate(result.issue_times.astype(np.float64))
    ends = frontier[
        interval_instructions - 1 : n_intervals * interval_instructions : interval_instructions
    ]
    starts = np.concatenate(([0.0], ends[:-1]))
    cycles = ends - starts
    # Guard against a degenerate zero-cycle interval (cannot happen with
    # finite issue bandwidth, but keep the invariant explicit).
    cycles = np.maximum(cycles, 1.0)
    tpi = cycles * cycle_time_ns / interval_instructions
    return IntervalSeries(
        window=result.config.window,
        cycle_time_ns=cycle_time_ns,
        interval_instructions=interval_instructions,
        tpi_ns=tpi,
    )


def best_window_sequence(series: dict[int, IntervalSeries]) -> np.ndarray:
    """Per-interval argmin over configurations (oracle best sequence).

    Returns an array of window sizes, one per interval; all series must
    cover the same number of intervals.
    """
    if not series:
        raise SimulationError("no interval series supplied")
    lengths = {len(s) for s in series.values()}
    if len(lengths) != 1:
        raise SimulationError(f"series lengths disagree: {sorted(lengths)}")
    windows = sorted(series)
    stacked = np.vstack([series[w].tpi_ns for w in windows])
    return np.array(windows, dtype=np.int64)[np.argmin(stacked, axis=0)]
