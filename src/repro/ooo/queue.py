"""Structural model of the resizable instruction queue.

The paper disables unused queue entries rather than repurposing them as
"backups", so shrinking the queue requires a cleanup operation: entries
in the portion about to be disabled must first issue (Section 5.1).
This module models that occupancy/drain behaviour; the performance
simulation itself lives in :mod:`repro.ooo.machine`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError
from repro.ooo.timing import QUEUE_INCREMENT


class InstructionQueue:
    """Entry bookkeeping for a queue built from 16-entry increments.

    Entries are identified by physical slot.  ``occupancy`` tracks how
    many instructions currently wait in each increment; the model is
    deliberately coarse (per-increment counts, not per-slot state)
    because only drain cost depends on it.
    """

    def __init__(self, max_entries: int, enabled_entries: int | None = None) -> None:
        if max_entries <= 0 or max_entries % QUEUE_INCREMENT:
            raise ConfigurationError(
                f"max_entries must be a positive multiple of {QUEUE_INCREMENT}"
            )
        self.max_entries = max_entries
        self._enabled = enabled_entries if enabled_entries is not None else max_entries
        self._check_enabled(self._enabled)
        self._occupancy = [0] * (max_entries // QUEUE_INCREMENT)

    def _check_enabled(self, entries: int) -> None:
        if entries <= 0 or entries > self.max_entries or entries % QUEUE_INCREMENT:
            raise ConfigurationError(
                f"enabled entries must be a multiple of {QUEUE_INCREMENT} in "
                f"(0, {self.max_entries}], got {entries}"
            )

    @property
    def enabled_entries(self) -> int:
        """Currently enabled window size."""
        return self._enabled

    @property
    def occupancy(self) -> int:
        """Instructions currently waiting in the queue."""
        return sum(self._occupancy)

    def enabled_increments(self) -> int:
        """Number of enabled 16-entry increments."""
        return self._enabled // QUEUE_INCREMENT

    def fill(self, per_increment: list[int]) -> None:
        """Set per-increment occupancy (used by tests and the manager)."""
        if len(per_increment) != len(self._occupancy):
            raise SimulationError("occupancy vector has wrong length")
        for inc, count in enumerate(per_increment):
            if count < 0 or count > QUEUE_INCREMENT:
                raise SimulationError(f"increment occupancy out of range: {count}")
            if count and inc >= self.enabled_increments():
                raise SimulationError("occupancy recorded in a disabled increment")
        self._occupancy = list(per_increment)

    def drain_cost_cycles(self, new_entries: int, issue_width: int = 8) -> int:
        """Cycles to drain entries that are about to be disabled.

        When shrinking, instructions resident in increments beyond the
        new boundary must issue before those increments can be switched
        off; at best ``issue_width`` of them issue per cycle.  Growing
        the queue needs no drain.  The paper performs this only on
        context switches, where the cost is negligible; interval
        policies charge it on every shrink.
        """
        self._check_enabled(new_entries)
        if new_entries >= self._enabled:
            return 0
        first_disabled = new_entries // QUEUE_INCREMENT
        to_drain = sum(self._occupancy[first_disabled:])
        return -(-to_drain // issue_width)

    def resize(self, new_entries: int, issue_width: int = 8) -> int:
        """Resize the queue; return the drain cost paid, in cycles."""
        cost = self.drain_cost_cycles(new_entries, issue_width)
        first_disabled = new_entries // QUEUE_INCREMENT
        for inc in range(first_disabled, len(self._occupancy)):
            self._occupancy[inc] = 0
        self._enabled = new_entries
        return cost
