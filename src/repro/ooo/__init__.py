"""Out-of-order superscalar machine with an adaptive instruction queue.

The queue study (paper Section 5.3) models an 8-way out-of-order
machine with perfect branch prediction, perfect caches and plentiful
functional units — so window size and dataflow are the only limiters —
whose issue queue size can be any multiple of 16 entries from 16 to 128.

Modules
-------
:mod:`repro.ooo.machine`
    Oldest-first greedy issue scheduler over a dependence-annotated
    trace; computes cycle counts, IPC and per-instruction issue times.
:mod:`repro.ooo.queue`
    Structural model of the resizable queue (entry enable/drain logic).
:mod:`repro.ooo.timing`
    Queue size to cycle time, via the Palacharla wakeup/select model.
:mod:`repro.ooo.intervals`
    Per-interval TPI sampling (the Section 6 snapshots).
:mod:`repro.ooo.adaptive`
    The CAS wrapper used by the Configuration Manager.
"""

from repro.ooo.machine import MachineConfig, MachineResult, OutOfOrderMachine
from repro.ooo.queue import InstructionQueue
from repro.ooo.timing import PAPER_QUEUE_SIZES, QueueTimingModel
from repro.ooo.intervals import IntervalSeries, interval_tpi_series
from repro.ooo.adaptive import AdaptiveInstructionQueue

__all__ = [
    "OutOfOrderMachine",
    "MachineConfig",
    "MachineResult",
    "InstructionQueue",
    "QueueTimingModel",
    "PAPER_QUEUE_SIZES",
    "interval_tpi_series",
    "IntervalSeries",
    "AdaptiveInstructionQueue",
]
