"""The resizable instruction queue as a complexity-adaptive structure.

A configuration is the number of enabled entries (a multiple of the
16-entry increment).  Unlike the cache, shrinking the queue requires a
cleanup: entries in the portion to be disabled must first issue, so the
reconfiguration cost includes a drain (paper Section 5.1: "this
low-overhead operation occurs only on context switches and therefore
does not pose a noticeable performance penalty" under the process-level
policy; interval policies charge it every shrink).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.structure import (
    ComplexityAdaptiveStructure,
    ReconfigurationCost,
    StructureRunResult,
)
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.obs.profile import profiled
from repro.ooo.machine import MachineConfig, OutOfOrderMachine
from repro.ooo.queue import InstructionQueue
from repro.ooo.timing import PAPER_QUEUE_SIZES, QueueTimingModel
from repro.workloads.instruction_trace import InstructionTrace


class AdaptiveInstructionQueue(ComplexityAdaptiveStructure[int]):
    """Complexity-adaptive issue queue (configuration = enabled entries)."""

    name = "iqueue"

    def __init__(
        self,
        timing: QueueTimingModel | None = None,
        initial_entries: int | None = None,
        issue_width: int = 8,
    ) -> None:
        self.timing = timing if timing is not None else QueueTimingModel()
        self.issue_width = issue_width
        max_entries = max(self.timing.sizes)
        self._queue = InstructionQueue(
            max_entries=max_entries,
            enabled_entries=initial_entries if initial_entries is not None else max_entries,
        )

    # -- ComplexityAdaptiveStructure interface ---------------------------

    def _all_configurations(self) -> Sequence[int]:
        """Designed enabled-entry counts, smallest (fastest) first."""
        return tuple(sorted(self.timing.sizes))

    def delay_ns(self, config: int) -> float:
        """Critical-path delay: atomic wakeup + select at this size."""
        self.validate(config)
        return self.timing.cycle_time_ns(config)

    @property
    def configuration(self) -> int:
        """Currently enabled entries."""
        return self._queue.enabled_entries

    def reconfigure(self, config: int) -> ReconfigurationCost:
        """Resize the queue, paying the drain cost when shrinking."""
        self.validate_reachable(config)
        changed = config != self.configuration
        obs.event(
            "structure.reconfigure", structure=self.name,
            from_config=self.configuration, to_config=config, changed=changed,
        )
        metrics().counter(
            "repro_reconfigurations_total", "CAS reconfigure() calls"
        ).inc(structure=self.name, changed=str(changed).lower())
        drain = self._queue.resize(config, issue_width=self.issue_width)
        return ReconfigurationCost(
            cleanup_cycles=drain, requires_clock_switch=changed
        )

    # -- structural passthrough ------------------------------------------

    @property
    def queue(self) -> InstructionQueue:
        """The underlying entry bookkeeping."""
        return self._queue

    def run(
        self,
        trace: InstructionTrace,
        *,
        memory_system=None,
        record_outcomes: bool = True,
    ) -> StructureRunResult:
        """Schedule a trace with the window at the current queue size.

        ``outcomes`` holds the per-instruction issue-cycle array
        (omitted when ``record_outcomes`` is false); ``stats`` carries
        ``ipc`` and ``cycles``.
        """
        machine = OutOfOrderMachine(
            MachineConfig(
                window=self.configuration,
                issue_width=self.issue_width,
                dispatch_width=self.issue_width,
            )
        )
        with obs.span(
            "structure.run", level="structure",
            structure=self.name, configuration=self.configuration,
            n_events=len(trace),
        ), profiled(f"structure.run:{self.name}"):
            result = machine.run(trace, memory_system=memory_system)
        metrics().counter(
            "repro_structure_runs_total", "adaptive-structure run() calls"
        ).inc(structure=self.name)
        return StructureRunResult(
            structure=self.name,
            configuration=self.configuration,
            n_events=result.n_instructions,
            stats={"ipc": result.ipc, "cycles": float(result.cycles)},
            outcomes=result.issue_times if record_outcomes else None,
        )


@dataclass(frozen=True)
class QueueConfigurationSpace:
    """Convenience bundle describing the paper's evaluated design space."""

    timing: QueueTimingModel = field(default_factory=QueueTimingModel)
    sizes: tuple[int, ...] = PAPER_QUEUE_SIZES

    def cycle_table(self) -> dict[int, float]:
        """Cycle time per size."""
        return {w: self.timing.cycle_time_ns(w) for w in self.sizes}
