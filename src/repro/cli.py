"""Command-line interface: regenerate any paper figure from a shell.

Examples::

    python -m repro figures               # list everything available
    python -m repro figure 9              # Figure 9's table
    python -m repro figure 13a            # a Section 6 snapshot
    python -m repro ablation granularity  # one of the ablations
    python -m repro extension concert     # TLB/bpred/joint studies
    python -m repro suite                 # the calibrated workload suite
    python -m repro clock                 # the CAP's predetermined clocks
    python -m repro power                 # Section 4.1 operating points

The public query API (see docs/service.md)::

    python -m repro query iqueue compress          # answer locally
    python -m repro serve --port 8337 --jobs 4     # run the sweep service
    python -m repro query tlb compress --url http://127.0.0.1:8337
    python -m repro loadtest --tenants 4 --requests 8   # load + SLO check

Every ``figure``/``ablation``/``extension`` run goes through the
experiment engine and accepts its knobs::

    python -m repro figure 9 --jobs 8 --cache-dir .repro-cache \\
        --telemetry run.jsonl
    python -m repro cache-clear --cache-dir .repro-cache

Observability (see docs/observability.md)::

    python -m repro figure 9 --trace t.jsonl --metrics m.prom --profile
    python -m repro obs summarize t.jsonl
    python -m repro obs critical-path t.jsonl --trace-id abc123
    python -m repro obs check

Fault tolerance (see docs/resilience.md)::

    python -m repro figure 9 --jobs 8 --retries 5 --timeout 120 \\
        --journal fig9.journal
    python -m repro figure 9 --jobs 8 --journal fig9.journal --resume
    python -m repro cache-verify --cache-dir .repro-cache
    python -m repro resilience check
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.engine.cells import cell_kinds
from repro.engine.engine import ExperimentEngine
from repro.experiments.reporting import format_series, format_table


# ---------------------------------------------------------------------------
# figure printers
# ---------------------------------------------------------------------------


def _print_wire_figure(series) -> None:
    print(format_series(series.x_label, series.x_values, series.as_series_dict()))
    for feature in sorted(series.buffered_ns, reverse=True):
        print(f"  buffering pays from x = {series.crossover(feature)} at {feature}u")


def _figure_1a(engine: ExperimentEngine) -> None:
    from repro.experiments.wire_delay import figure1

    print("Figure 1(a): cache wire delay (ns), 2KB subarrays")
    _print_wire_figure(figure1(subarray_kb=2))


def _figure_1b(engine: ExperimentEngine) -> None:
    from repro.experiments.wire_delay import figure1

    print("Figure 1(b): cache wire delay (ns), 4KB subarrays")
    _print_wire_figure(figure1(subarray_kb=4))


def _figure_2(engine: ExperimentEngine) -> None:
    from repro.experiments.wire_delay import figure2

    print("Figure 2: integer queue wire delay (ns)")
    _print_wire_figure(figure2())


def _print_tpi_panels(panels, x_label: str) -> None:
    for domain in ("integer", "floating"):
        panel = panels[domain]
        apps = sorted(panel)
        xs = sorted(next(iter(panel.values())))
        series = {app: [panel[app][x] for x in xs] for app in apps}
        print(f"\n[{domain}]")
        print(format_series(x_label, xs, series))


def _figure_7(engine: ExperimentEngine) -> None:
    from repro.experiments.cache_study import figure7

    print("Figure 7: Avg TPI (ns) vs L1 D-cache size, fixed boundary")
    _print_tpi_panels(figure7(engine=engine), "L1 KB")


def _figure_8_9(metric: str, engine: ExperimentEngine) -> None:
    from repro.experiments.cache_study import figure8_9

    study = figure8_9(engine=engine)
    comparison = study.tpi_miss if metric == "miss" else study.tpi
    label = "TPImiss" if metric == "miss" else "TPI"
    print(
        f"Figure {'8' if metric == 'miss' else '9'}: Avg {label} (ns), conventional "
        f"{study.conventional_l1_kb:.0f}KB L1 vs process-level adaptive"
    )
    rows = [
        [app, f"{8 * study.best_boundaries[app]}K",
         comparison.conventional[app], comparison.adaptive[app]]
        for app in comparison.applications
    ]
    rows.append(["average", "-", comparison.average_conventional(),
                 comparison.average_adaptive()])
    print(format_table(["app", "adaptive L1", "conventional", "adaptive"], rows))
    print(f"average reduction: {comparison.average_reduction_percent():.1f}%")


def _figure_10(engine: ExperimentEngine) -> None:
    from repro.experiments.queue_study import figure10

    print("Figure 10: Avg TPI (ns) vs instruction queue size")
    _print_tpi_panels(figure10(engine=engine), "entries")


def _figure_11(engine: ExperimentEngine) -> None:
    from repro.experiments.queue_study import figure11

    study = figure11(engine=engine)
    print(
        f"Figure 11: Avg TPI (ns), conventional {study.conventional_size}-entry "
        "queue vs process-level adaptive"
    )
    rows = [
        [app, study.best_sizes[app], study.tpi.conventional[app],
         study.tpi.adaptive[app]]
        for app in study.tpi.applications
    ]
    rows.append(["average", "-", study.tpi.average_conventional(),
                 study.tpi.average_adaptive()])
    print(format_table(["app", "adaptive entries", "conventional", "adaptive"], rows))
    print(f"average reduction: {study.tpi.average_reduction_percent():.1f}%")


def _print_interval_result(result) -> None:
    windows = result.windows
    rows = [
        [i] + [float(result.series[w].tpi_ns[i]) for w in windows]
        for i in range(len(result.series[windows[0]]))
    ]
    print(format_table(["interval"] + [f"{w}" for w in windows], rows))


def _figure_12(engine: ExperimentEngine) -> None:
    from repro.experiments.interval_study import figure12

    print("Figure 12: turb3d interval TPI (ns), 64 vs 128 entries")
    _print_interval_result(figure12(intervals_per_phase=30, engine=engine))


def _figure_13(regular: bool, engine: ExperimentEngine) -> None:
    from repro.experiments.interval_study import figure13

    panel = "a (regular)" if regular else "b (irregular)"
    print(f"Figure 13{panel}: vortex interval TPI (ns), 16 vs 64 entries")
    _print_interval_result(figure13(regular=regular, engine=engine))


_FIGURES: dict[str, Callable[[ExperimentEngine], None]] = {
    "1a": _figure_1a,
    "1b": _figure_1b,
    "2": _figure_2,
    "7": _figure_7,
    "8": lambda engine: _figure_8_9("miss", engine),
    "9": lambda engine: _figure_8_9("total", engine),
    "10": _figure_10,
    "11": _figure_11,
    "12": _figure_12,
    "13a": lambda engine: _figure_13(True, engine),
    "13b": lambda engine: _figure_13(False, engine),
}


# ---------------------------------------------------------------------------
# ablations and extensions
# ---------------------------------------------------------------------------


def _ablation(name: str, engine: ExperimentEngine) -> None:
    from repro.experiments import ablations
    from repro.experiments.interval_study import figure13

    if name == "granularity":
        r = ablations.increment_granularity_ablation(engine=engine)
        print(format_table(
            ["design", "cycle @16KB", "conventional TPI", "adaptive TPI"],
            [["8KB 2-way (paper)", r.paper_cycle_at_16kb, r.paper_suite_tpi_ns,
              r.paper_adaptive_tpi_ns],
             ["4KB direct-mapped", r.fine_cycle_at_16kb, r.fine_suite_tpi_ns,
              r.fine_adaptive_tpi_ns]],
        ))
    elif name == "latency-mode":
        r = ablations.latency_mode_ablation(engine=engine)
        winners = r.winners()
        rows = [[a, r.clock_mode_tpi[a], r.latency_mode_tpi[a], winners[a]]
                for a in sorted(r.clock_mode_tpi)]
        print(format_table(["app", "clock mode", "latency mode", "winner"], rows))
    elif name == "flush":
        r = ablations.flush_reconfiguration_ablation()
        print(f"{r.app}: {r.preserved_misses} misses preserving data, "
              f"{r.flushed_misses} with a flush "
              f"(+{r.extra_misses}, {r.extra_miss_ns / 1000:.1f} us)")
    elif name == "confidence":
        sweep = ablations.confidence_threshold_sweep(
            figure13(regular=False, engine=engine)
        )
        print(format_table(
            ["threshold", "TPI (ns)", "switches"],
            [[t, o.tpi_ns, o.n_switches] for t, o in sorted(sweep.items())],
        ))
    elif name == "switch-cost":
        sweep = ablations.switch_cost_sensitivity(
            figure13(regular=True, engine=engine)
        )
        print(format_table(
            ["pause (cycles)", "TPI (ns)", "switches"],
            [[p, o.tpi_ns, o.n_switches] for p, o in sorted(sweep.items())],
        ))
    else:
        raise SystemExit(f"unknown ablation {name!r}; see `repro ablations`")


_ABLATIONS = ("granularity", "latency-mode", "flush", "confidence", "switch-cost")


def _extension(name: str, engine: ExperimentEngine) -> None:
    from repro.branch.predictors import PredictorKind
    from repro.experiments import extended_structures as ext
    from repro.experiments.interval_study import cache_interval_study, predictor_study

    if name == "tlb":
        study = ext.tlb_study(engine=engine)
        rows = [[a, study.best_configs[a], study.tpi.conventional[a],
                 study.tpi.adaptive[a]] for a in study.tpi.applications]
        print(format_table(["app", "best fast entries", "conventional", "adaptive"],
                           rows))
        print(f"conventional fast section: {study.conventional_config}; "
              f"average reduction {study.tpi.average_reduction_percent():.1f}%")
    elif name == "bpred":
        for kind in (PredictorKind.GSHARE, PredictorKind.BIMODAL):
            study = ext.branch_study(kind, engine=engine)
            print(f"{kind.value}: conventional {study.conventional_config} entries, "
                  f"average reduction {study.tpi.average_reduction_percent():.1f}%")
    elif name == "concert":
        study = ext.concert_study(engine=engine)
        conv = study.conventional
        print(f"conventional: L1 {8 * conv.cache_boundary}KB, "
              f"queue {conv.queue_entries}, TLB fast {conv.tlb_fast_entries}, "
              f"bpred {conv.predictor_entries}")
        rows = [[a, f"{8 * c.cache_boundary}K", c.queue_entries,
                 c.tlb_fast_entries, c.predictor_entries]
                for a, c in study.best_configs.items()]
        print(format_table(["app", "L1", "queue", "TLB fast", "bpred"], rows))
        print(f"average joint reduction: {study.tpi.average_reduction_percent():.1f}%")
    elif name == "cache-intervals":
        study = cache_interval_study()
        ps = predictor_study(study, confidence_threshold=0.7)
        print(f"best static: {ps.best_static_tpi_ns:.3f} ns; "
              f"predictor: {ps.adaptive.tpi_ns:.3f} ns "
              f"({ps.adaptive.n_switches} switches); "
              f"oracle: {ps.oracle.tpi_ns:.3f} ns")
    else:
        raise SystemExit(f"unknown extension {name!r}; see `repro extensions`")


_EXTENSIONS = ("tlb", "bpred", "concert", "cache-intervals")


# ---------------------------------------------------------------------------
# info commands
# ---------------------------------------------------------------------------


def _suite() -> None:
    from repro.workloads.suite import all_profiles

    rows = []
    for p in all_profiles():
        if p.memory is None:
            memory = "(not traced — Atom could not instrument go)"
        else:
            memory = ", ".join(
                f"{c.kind.value}:{c.size_kb:g}KB@{c.weight:g}"
                for c in p.memory.components
            )
        rows.append([p.name, p.suite.value, p.domain, memory])
    print(format_table(["app", "suite", "domain", "working-set components"], rows))


def _clock() -> None:
    from repro import CapProcessor

    cpu = CapProcessor()
    print(cpu.describe())
    print("\nAll predetermined clock periods:")
    for period in cpu.clock.available_speeds_ns():
        print(f"  {period:.3f} ns  ({1.0 / period:.2f} GHz)")


def _power() -> None:
    from repro import AdaptiveCacheHierarchy, AdaptiveInstructionQueue
    from repro.core.power import PowerModel, PowerMode

    model = PowerModel(
        structures=(AdaptiveCacheHierarchy(), AdaptiveInstructionQueue())
    )
    rows = []
    for mode in (PowerMode.HIGH_PERFORMANCE, PowerMode.BALANCED, PowerMode.LOW_POWER):
        est = model.mode_estimate(mode)
        rows.append([mode.value, str(est.configs), est.cycle_time_ns,
                     est.relative_power])
    print(format_table(["mode", "configs", "clock (ns)", "relative power"], rows))


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _engine_options() -> argparse.ArgumentParser:
    """Shared ``--jobs``/``--cache-dir``/``--no-cache``/``--telemetry``
    options for every subcommand that runs experiments."""
    opts = argparse.ArgumentParser(add_help=False)
    group = opts.add_argument_group("engine options")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep cells (default: 1, serial)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache directory (default: no cache)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache even if --cache-dir is set",
    )
    group.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write per-cell run telemetry as JSONL to PATH (legacy format; "
        "--trace supersedes it)",
    )
    group.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="cells per worker chunk (default: automatic load-balancing "
        "heuristic)",
    )
    res_group = opts.add_argument_group("resilience options")
    res_group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="total attempts per chunk before a transient failure is fatal "
        "(default: 3)",
    )
    res_group.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-chunk deadline in seconds; a chunk exceeding it is treated "
        "as a hung worker (default: no deadline)",
    )
    res_group.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durably record each completed cell to PATH so an interrupted "
        "sweep can be resumed",
    )
    res_group.add_argument(
        "--resume", action="store_true",
        help="serve cells already recorded in --journal instead of "
        "recomputing them",
    )
    obs_group = opts.add_argument_group("observability options")
    obs_group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a structured span/event decision trace as JSONL to PATH",
    )
    obs_group.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a Prometheus text snapshot of the metrics registry to PATH",
    )
    obs_group.add_argument(
        "--profile", action="store_true",
        help="print a wall-time profile (per evaluator kind, per structure) "
        "to stderr after the run",
    )
    return opts


def _engine_from_args(args: argparse.Namespace) -> ExperimentEngine:
    from repro.resilience import RetryPolicy

    if args.resume and not args.journal:
        raise SystemExit("error: --resume requires --journal PATH")
    retry = None
    if args.retries is not None or args.timeout is not None:
        defaults = RetryPolicy()
        retry = RetryPolicy(
            max_attempts=(
                args.retries if args.retries is not None else defaults.max_attempts
            ),
            timeout_s=args.timeout,
        )
    return ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        telemetry=args.telemetry,
        chunk_size=args.chunk_size,
        retry=retry,
        journal=args.journal,
        resume=args.resume,
    )


def _print_telemetry_summary(path: str) -> None:
    from repro.obs.summarize import summarize_path

    print(summarize_path(path), file=sys.stderr)


def _run_observed(
    args: argparse.Namespace, span_name: str, runner: Callable[[], None],
    **span_attrs,
) -> None:
    """Run one command under the requested observability sinks.

    ``--trace`` activates a tracer (the whole command becomes one
    ``run``-level span), ``--profile`` activates a wall-time profiler
    (report on stderr), and ``--metrics`` snapshots the process-wide
    registry to a Prometheus text file after the run.
    """
    from contextlib import ExitStack

    from repro.obs import metrics
    from repro.obs.profile import profiling
    from repro.obs.trace import Tracer, span

    profiler = None
    with ExitStack() as stack:
        if args.trace:
            stack.enter_context(Tracer(args.trace))
        if args.profile:
            profiler = stack.enter_context(profiling())
        with span(span_name, level="run", **span_attrs):
            runner()
    if args.metrics:
        metrics().write_prometheus(args.metrics)
    if profiler is not None:
        print(profiler.report(), file=sys.stderr)


def _obs_summarize(path: str) -> int:
    from repro.obs.summarize import summarize_path

    print(summarize_path(path))
    return 0


def _obs_critical_path(path: str, trace_id: str | None) -> int:
    from repro.errors import ObservabilityError
    from repro.obs import read_records
    from repro.obs.critical import critical_path, format_report

    try:
        report = critical_path(read_records(path), trace_id=trace_id)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_report(report))
    return 0


def _obs_check() -> int:
    """Run a tiny traced sweep; validate every emitted record."""
    import tempfile
    from pathlib import Path

    from repro.experiments.cache_study import figure8_9
    from repro.obs import metrics, read_records, validate_trace
    from repro.obs.trace import Tracer, span

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "obs-check.jsonl"
        with Tracer(trace_path):
            with span("obs_check", level="run"):
                figure8_9(n_refs=4000, warmup_refs=1000)
        records = read_records(trace_path)
        validate_trace(records)  # raises on any malformed record
    levels = {r["level"] for r in records if r["record"] == "span"}
    needed = {"run", "interval", "candidate", "reconfigure", "engine"}
    missing = needed - levels
    if missing:
        print(
            f"obs check FAILED: missing span levels {sorted(missing)}",
            file=sys.stderr,
        )
        return 1
    if "repro_manager_decisions_total" not in metrics().to_prometheus():
        print(
            "obs check FAILED: registry missing repro_manager_decisions_total",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs check ok: {len(records)} records schema-valid, "
        f"span levels: {', '.join(sorted(levels))}"
    )
    return 0


def _cache_verify(cache_dir: str) -> int:
    """Integrity-check a result cache; exit non-zero if anything is corrupt."""
    from repro.engine.cache import ResultCache

    cache = ResultCache(cache_dir)
    report = cache.verify()
    print(
        f"{cache_dir}: {report.total} entr{'y' if report.total == 1 else 'ies'} "
        f"checked, {report.ok} ok, {report.stale} stale, "
        f"{len(report.corrupt)} corrupt"
    )
    for key in report.corrupt:
        print(f"  quarantined {key[:16]}… -> {cache.quarantine_dir}")
    return 0 if report.healthy else 1


def _resilience_check() -> int:
    """Prove the recovery paths on a tiny sweep; exit non-zero on drift.

    Injects a worker crash, a hang, a transient exception and a corrupt
    cache entry into a small batch and asserts the results stay
    byte-identical to a fault-free run; then interrupts a journaled
    sweep partway and verifies ``--resume`` re-executes only the
    unfinished cells.
    """
    import tempfile
    from pathlib import Path

    from repro.branch.predictors import PredictorKind
    from repro.engine.cells import (
        branch_tpi_cell,
        cache_tpi_cell,
        queue_tpi_cell,
        tlb_tpi_cell,
    )
    from repro.obs.metrics import metrics
    from repro.resilience import FaultEvent, FaultPlan, RetryPolicy
    from repro.workloads.suite import get_profile

    compress, stereo = get_profile("compress"), get_profile("stereo")
    cells = [
        cache_tpi_cell(compress, 4_000, 1_000, (1, 2)),
        tlb_tpi_cell(stereo, 4_000, 1_000),
        queue_tpi_cell(compress, 1_000, (16, 32)),
        branch_tpi_cell(stereo, PredictorKind.GSHARE, 1_000),
    ]
    baseline = ExperimentEngine(jobs=1).map(cells)

    # One round per fault kind: a crash kills the whole pool and would
    # re-queue co-pending chunks at attempt 1, skipping their attempt-0
    # faults — separate rounds keep every injection deterministic.
    policy = RetryPolicy(base_delay_s=0.01, timeout_s=5.0)
    rounds = {
        "crash": FaultPlan(events=(FaultEvent("crash", chunk=0, attempt=0),)),
        "transient": FaultPlan(
            events=(FaultEvent("transient", chunk=1, attempt=0),)
        ),
        "hang": FaultPlan(
            events=(FaultEvent("hang", chunk=2, attempt=0, hang_s=60.0),)
        ),
    }
    for name, plan in rounds.items():
        faulted = ExperimentEngine(
            jobs=2, chunk_size=1, retry=policy, fault_plan=plan
        )
        if faulted.map(cells) != baseline:
            print(
                f"resilience check FAILED: {name}-faulted run diverged "
                "from the fault-free baseline",
                file=sys.stderr,
            )
            return 1

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        ExperimentEngine(jobs=1, cache_dir=cache_dir).map(cells)  # warm
        corrupting = ExperimentEngine(
            jobs=1, cache_dir=cache_dir,
            fault_plan=FaultPlan(events=(FaultEvent("corrupt_cache", chunk=0),)),
        )
        if corrupting.map(cells) != baseline:
            print(
                "resilience check FAILED: corrupt-cache run diverged",
                file=sys.stderr,
            )
            return 1
        if corrupting.stats.cache_misses != 1:
            print(
                "resilience check FAILED: corrupt entry was not recomputed "
                f"(expected 1 miss, saw {corrupting.stats.cache_misses})",
                file=sys.stderr,
            )
            return 1

        journal = Path(tmp) / "sweep.journal"
        interrupted = ExperimentEngine(jobs=1, journal=journal)
        interrupted.map(cells[:2])  # "killed" after two cells
        resumed = ExperimentEngine(jobs=1, journal=journal, resume=True)
        if resumed.map(cells) != baseline:
            print("resilience check FAILED: resumed run diverged", file=sys.stderr)
            return 1
        if resumed.stats.resumed != 2 or resumed.stats.cache_misses != 2:
            print(
                "resilience check FAILED: resume recomputed the wrong cells "
                f"(resumed {resumed.stats.resumed}, computed "
                f"{resumed.stats.cache_misses}; expected 2 and 2)",
                file=sys.stderr,
            )
            return 1

    reg = metrics()
    counters = {
        "repro_engine_retries_total",
        "repro_engine_pool_respawns_total",
        "repro_engine_chunk_timeouts_total",
        "repro_engine_cache_corrupt_total",
        "repro_engine_journal_resumed_total",
    }
    quiet = sorted(c for c in counters if reg.counter(c).value() == 0)
    if quiet:
        print(
            f"resilience check FAILED: counters never fired: {quiet}",
            file=sys.stderr,
        )
        return 1
    print(
        "resilience check ok: crash, hang, transient, cache corruption and "
        "interrupt/resume all recovered byte-identically "
        f"(retries={reg.counter('repro_engine_retries_total').value():.0f}, "
        f"respawns={reg.counter('repro_engine_pool_respawns_total').value():.0f}, "
        f"timeouts={reg.counter('repro_engine_chunk_timeouts_total').value():.0f}, "
        f"corrupt={reg.counter('repro_engine_cache_corrupt_total').value():.0f}, "
        f"resumed={reg.counter('repro_engine_journal_resumed_total').value():.0f})"
    )
    return 0


def _degrade(args, engine: ExperimentEngine) -> None:
    """Print the graceful-degradation study's retained-TPI grid."""
    from repro.experiments.degradation_study import degradation_study

    study = degradation_study(
        fail_fractions=tuple(args.faults),
        noise_fractions=tuple(args.noise),
        seed=args.seed,
        n_rounds=args.rounds,
        engine=engine,
    )
    print(
        "Graceful degradation: TPI retained vs the fault-free oracle "
        f"(seed {study.seed}, {study.n_rounds} adaptation rounds)"
    )
    rows = [
        [
            c.structure,
            f"{c.fail_fraction:.0%}",
            f"{c.noise_fraction:.0%}",
            f"{c.n_reachable}/{c.n_designed}",
            c.oracle_tpi_ns,
            c.final_tpi_ns,
            f"{c.retained:.1%}",
            f"{c.n_fallbacks}/{c.n_regressions}",
        ]
        for c in study.cells
    ]
    print(format_table(
        ["structure", "faults", "noise", "reachable", "oracle TPI",
         "final TPI", "retained", "fallbacks/regr"],
        rows,
    ))
    print(
        f"worst retained: {study.worst_retained():.1%}; "
        f"unrecovered regressions: {study.total_unrecovered()}"
    )


def _robust_check() -> int:
    """Prove the degraded-hardware paths; exit non-zero on any failure.

    Runs the degradation study at 25% failed increments + 10% sensor
    noise over all four structures, then directly exercises the
    watchdog-fallback, thrash-lock and sensor-dropout paths, and
    verifies the whole stack is deterministic under a fixed seed.
    """
    from repro.experiments.degradation_study import degradation_study
    from repro.obs.metrics import metrics
    from repro.robust import (
        GuardrailConfig,
        HardwareFaultModel,
        NoisySensor,
        SensorNoiseConfig,
        ThrashDetector,
    )

    study = degradation_study(
        fail_fractions=(0.25,), noise_fractions=(0.10,),
        n_refs=2_000, warmup_refs=500,
        n_instructions=1_000, n_branches=1_000,
    )
    if len(study.cells) != 4:
        print("robust check FAILED: expected all four structures", file=sys.stderr)
        return 1
    if any(c.n_reachable >= c.n_designed for c in study.cells):
        print(
            "robust check FAILED: 25% fault injection masked nothing",
            file=sys.stderr,
        )
        return 1
    if study.total_unrecovered() != 0:
        print(
            f"robust check FAILED: {study.total_unrecovered()} TPI "
            "regressions left unrecovered",
            file=sys.stderr,
        )
        return 1
    if not 0.0 < study.worst_retained() <= 1.0:
        print(
            f"robust check FAILED: nonsensical retained fraction "
            f"{study.worst_retained()}",
            file=sys.stderr,
        )
        return 1

    again = degradation_study(
        fail_fractions=(0.25,), noise_fractions=(0.10,),
        n_refs=2_000, warmup_refs=500,
        n_instructions=1_000, n_branches=1_000,
    )
    if again.cells != study.cells:
        print(
            "robust check FAILED: same-seed study runs diverged",
            file=sys.stderr,
        )
        return 1

    # Deterministic fault draw, dropout and thrash-lock paths.
    model_a = HardwareFaultModel.seeded(7, {"dcache": 8}, 0.5)
    model_b = HardwareFaultModel.seeded(7, {"dcache": 8}, 0.5)
    if model_a.faults != model_b.faults or not model_a.faults:
        print("robust check FAILED: seeded fault draw not deterministic",
              file=sys.stderr)
        return 1
    sensor = NoisySensor(SensorNoiseConfig(dropout_rate=1.0), seed=1)
    if sensor.read(0, 1.0) is not None:
        print("robust check FAILED: full dropout still delivered a sample",
              file=sys.stderr)
        return 1
    detector = ThrashDetector(GuardrailConfig(thrash_threshold=2, cooldown=4))
    detector.record_switch(0)
    detector.record_switch(1)
    if not detector.locked(2) or detector.n_locks != 1:
        print("robust check FAILED: thrash detector never locked",
              file=sys.stderr)
        return 1

    reg = metrics()

    def fired(name: str) -> float:  # labelled counters: sum every series
        return sum(reg.counter(name).collect().values())

    needed = {
        "repro_robust_faults_injected_total",
        "repro_robust_watchdog_regressions_total",
        "repro_robust_watchdog_fallbacks_total",
        "repro_robust_sensor_dropouts_total",
        "repro_robust_thrash_locks_total",
    }
    quiet = sorted(c for c in needed if fired(c) == 0)
    if quiet:
        print(f"robust check FAILED: counters never fired: {quiet}",
              file=sys.stderr)
        return 1
    worst = min(study.cells, key=lambda c: c.retained)
    print(
        "robust check ok: 25% faults + 10% noise; all four structures "
        "completed, every TPI regression recovered "
        f"(worst retained {worst.retained:.1%} on {worst.structure}; "
        f"faults={fired('repro_robust_faults_injected_total'):.0f}, "
        f"regressions={fired('repro_robust_watchdog_regressions_total'):.0f}, "
        f"fallbacks={fired('repro_robust_watchdog_fallbacks_total'):.0f})"
    )
    return 0


def _serve(args, engine: ExperimentEngine) -> int:
    """Boot the sweep service and block until interrupted."""
    from contextlib import ExitStack

    from repro.dispatch.plane import DispatchPolicy
    from repro.obs.trace import Tracer
    from repro.service import QuotaPolicy, ServiceConfig, run_service
    from repro.service.breaker import BreakerPolicy

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        quota=QuotaPolicy(
            burst=args.quota_burst,
            rate_per_s=args.quota_rate,
            max_inflight=args.quota_inflight,
        ),
        warm_entries=args.warm_entries,
        batch_window_s=args.batch_window,
        journal_path=args.job_journal,
        max_jobs=args.max_jobs,
        breaker=BreakerPolicy(
            failure_threshold=args.breaker_failures,
            reset_timeout_s=args.breaker_reset,
        ),
        drain_timeout_s=args.drain_timeout,
        workers=args.workers,
        dispatch=DispatchPolicy(lease_s=args.lease),
    )

    def on_ready(service) -> None:
        # The CI smoke test parses this line for the bound port.
        print(f"serving on http://{config.host}:{service.port}", flush=True)

    with ExitStack() as stack:
        if args.trace:
            # Every request span, queue wait, batch and stitched worker
            # shard of the service's lifetime lands in this one file.
            stack.enter_context(Tracer(args.trace))
        run_service(engine, config, on_ready=on_ready)
    return 0


def _worker(args) -> int:
    """Serve one dispatch worker until SIGTERM/SIGINT."""
    from repro.dispatch.worker import WorkerConfig, run_worker

    config = WorkerConfig(
        host=args.host,
        port=args.port,
        slots=args.slots,
        broker_url=args.broker,
    )

    def on_ready(server) -> None:
        # The chaos drill and smoke script parse this line for the port.
        print(
            f"worker serving on http://{config.host}:{server.port}",
            flush=True,
        )

    run_worker(config, on_ready=on_ready)
    return 0


def _loadtest(args) -> int:
    """Drive a load/SLO run against a live or self-hosted service."""
    from contextlib import ExitStack

    from repro.errors import ReproError
    from repro.obs.trace import Tracer
    from repro.service import ServiceConfig, ServiceThread
    from repro.service.loadtest import (
        SloPolicy,
        append_bench,
        format_report,
        run_loadtest,
    )

    slo = SloPolicy(
        p50_s=args.slo_p50,
        p95_s=args.slo_p95,
        p99_s=args.slo_p99,
        max_error_rate=args.slo_max_error_rate,
        max_throttle_rate=args.slo_max_429_rate,
    )
    try:
        with ExitStack() as stack:
            if args.trace:
                stack.enter_context(Tracer(args.trace))
            url = args.url
            if url is None:
                engine = _engine_from_args(args)
                service = stack.enter_context(
                    ServiceThread(engine, ServiceConfig(port=0))
                )
                url = service.url
            report = run_loadtest(
                url,
                tenants=args.tenants,
                requests_per_tenant=args.requests,
                seed=args.seed,
                warm_fraction=args.warm_fraction,
                slo=slo,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_report(report))
    if args.bench:
        append_bench(args.bench, report, label=args.label)
        print(f"appended run record to {args.bench}")
    return 0 if report.passed else 1


def _query(args, engine: ExperimentEngine) -> int:
    """Answer one optimization request, locally or against a service."""
    from repro.api import OptimizationRequest, run_query
    from repro.errors import ReproError

    try:
        request = OptimizationRequest(
            args.structure,
            args.workload,
            tenant=args.tenant,
            predictor=args.predictor,
        )
        if args.url:
            from repro.service.client import ServiceClient

            result = ServiceClient(args.url).optimize(request)
        else:
            result = run_query(request, engine=engine)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(result.to_json())
        return 0
    print(
        f"{request.structure}/{request.workload}: best configuration "
        f"{result.best.config} (TPI {result.best.tpi_ns:.6f} ns, "
        f"IPC {result.best.ipc:.4f}, cycle {result.best.cycle_time_ns:.4f} ns)"
    )
    rows = [
        [point.config, point.tpi_ns, point.ipc, point.cycle_time_ns]
        for point in result.sweep
    ]
    print(format_table(["config", "TPI (ns)", "IPC", "cycle (ns)"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Complexity-Adaptive Processors: regenerate the paper.",
    )
    engine_opts = _engine_options()
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("figures", help="list regenerable figures")
    fig = sub.add_parser(
        "figure", help="print one figure's data", parents=[engine_opts]
    )
    fig.add_argument("id", choices=sorted(_FIGURES))
    sub.add_parser("ablations", help="list ablation studies")
    abl = sub.add_parser("ablation", help="run one ablation", parents=[engine_opts])
    abl.add_argument("name", choices=_ABLATIONS)
    sub.add_parser("extensions", help="list extension studies")
    extp = sub.add_parser(
        "extension", help="run one extension study", parents=[engine_opts]
    )
    extp.add_argument("name", choices=_EXTENSIONS)
    exp = sub.add_parser("export", help="write figure data as CSV")
    exp.add_argument("id", help="figure id, or 'all'")
    exp.add_argument("--out", default="figures", help="output directory")
    clear = sub.add_parser("cache-clear", help="drop cached sweep results")
    clear.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="cache directory to clear",
    )
    clear.add_argument(
        "--kind", default=None, choices=sorted(cell_kinds()),
        help="only drop entries of this cell kind (default: all)",
    )
    obsp = sub.add_parser(
        "obs", help="observability: summarize or validate decision traces"
    )
    obs_sub = obsp.add_subparsers(dest="obs_command", required=True)
    osum = obs_sub.add_parser(
        "summarize",
        help="render a trace file (or legacy telemetry log) human-readable",
    )
    osum.add_argument("path", help="JSONL trace file written via --trace")
    ocp = obs_sub.add_parser(
        "critical-path",
        help="decompose a trace's end-to-end latency along the critical "
             "path of its span tree",
    )
    ocp.add_argument("path", help="JSONL trace file written via --trace")
    ocp.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="analyse this trace id (default: the trace with the longest "
             "root span)",
    )
    obs_sub.add_parser(
        "check",
        help="run a tiny traced sweep and validate every record's schema",
    )
    cver = sub.add_parser(
        "cache-verify",
        help="integrity-check every cached result, quarantining corrupt ones",
    )
    cver.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="cache directory to verify",
    )
    resp = sub.add_parser(
        "resilience", help="fault tolerance: self-check the recovery paths"
    )
    res_sub = resp.add_subparsers(dest="resilience_command", required=True)
    res_sub.add_parser(
        "check",
        help="inject crash/hang/transient/corruption faults into a tiny "
             "sweep and verify byte-identical recovery plus resume",
    )
    deg = sub.add_parser(
        "degrade",
        help="graceful-degradation study: TPI retained with failed "
             "increments and noisy sensors",
        parents=[engine_opts],
    )
    deg.add_argument(
        "--faults", type=float, nargs="+", default=[0.25], metavar="F",
        help="fractions of non-minimal increments to fail (default: 0.25)",
    )
    deg.add_argument(
        "--noise", type=float, nargs="+", default=[0.10], metavar="F",
        help="multiplicative TPI sensor noise levels (default: 0.10)",
    )
    deg.add_argument(
        "--seed", type=int, default=0,
        help="seed for fault draws and sensor noise (default: 0)",
    )
    deg.add_argument(
        "--rounds", type=int, default=12,
        help="adaptation rounds per grid cell (default: 12)",
    )
    robp = sub.add_parser(
        "robust", help="degraded hardware: self-check the robustness paths"
    )
    rob_sub = robp.add_subparsers(dest="robust_command", required=True)
    rob_sub.add_parser(
        "check",
        help="run the degradation study at 25%% faults + 10%% noise and "
             "verify every guardrail path fires and recovers",
    )
    servep = sub.add_parser(
        "serve",
        help="run the multi-tenant TPI-optimization sweep service "
             "(POST /v1/optimize, GET /v1/jobs/{id}, GET /metrics)",
        parents=[engine_opts],
    )
    servep.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    servep.add_argument(
        "--port", type=int, default=8337,
        help="bind port; 0 picks an ephemeral port (default: 8337)",
    )
    servep.add_argument(
        "--quota-burst", type=int, default=8, metavar="N",
        help="per-tenant token-bucket burst capacity (default: 8)",
    )
    servep.add_argument(
        "--quota-rate", type=float, default=4.0, metavar="R",
        help="per-tenant sustained admissions per second (default: 4)",
    )
    servep.add_argument(
        "--quota-inflight", type=int, default=16, metavar="N",
        help="per-tenant concurrent job cap (default: 16)",
    )
    servep.add_argument(
        "--warm-entries", type=int, default=256, metavar="N",
        help="warm result store capacity, LRU-evicted (default: 256)",
    )
    servep.add_argument(
        "--batch-window", type=float, default=0.02, metavar="S",
        help="seconds a new cell waits for batch companions (default: 0.02)",
    )
    servep.add_argument(
        "--job-journal", default=None, metavar="PATH",
        help="durable job journal (JSONL WAL); admitted jobs survive a "
             "crash and are recovered on restart (default: disabled)",
    )
    servep.add_argument(
        "--max-jobs", type=int, default=4096, metavar="N",
        help="hard cap on the job table; admission past it answers 429 "
             "(default: 4096)",
    )
    servep.add_argument(
        "--breaker-failures", type=int, default=3, metavar="N",
        help="consecutive failed engine batches before the circuit "
             "breaker opens (default: 3)",
    )
    servep.add_argument(
        "--breaker-reset", type=float, default=5.0, metavar="S",
        help="seconds an open breaker sheds before probing (default: 5)",
    )
    servep.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="SIGTERM drain budget for in-flight batches (default: 10)",
    )
    servep.add_argument(
        "--workers", action="store_true",
        help="enable the distributed worker plane: expose /v1/workers/* "
             "registration routes and dispatch cell chunks to registered "
             "`repro worker` processes under time-bounded leases "
             "(default: evaluate locally)",
    )
    servep.add_argument(
        "--lease", type=float, default=30.0, metavar="S",
        help="seconds a worker holds a chunk lease before the broker "
             "declares it lost and fails the chunk over (default: 30)",
    )
    workerp = sub.add_parser(
        "worker",
        help="serve one dispatch worker: register with a `repro serve "
             "--workers` broker, heartbeat, and evaluate leased cell "
             "chunks (POST /v1/evaluate, GET /healthz)",
    )
    workerp.add_argument(
        "--broker", default=None, metavar="URL",
        help="broker base URL to register with and heartbeat against "
             "(default: standalone, no registration)",
    )
    workerp.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    workerp.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 picks an ephemeral port (default: 0)",
    )
    workerp.add_argument(
        "--slots", type=int, default=1, metavar="N",
        help="concurrent chunk leases this worker accepts (default: 1)",
    )
    chaosp = sub.add_parser(
        "chaos",
        help="run the deterministic chaos drill: SIGKILL/recovery, "
             "breaker open/close, journal corruption — exits 0 only if "
             "every invariant holds",
    )
    chaosp.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed; same seed, same drill (default: 0)",
    )
    chaosp.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="directory for journals/cache scratch (default: a fresh "
             "temporary directory, kept for post-mortems)",
    )
    loadp = sub.add_parser(
        "loadtest",
        help="drive a deterministic multi-tenant load mix at a sweep "
             "service, judge latency SLOs, append to BENCH_service.json",
        parents=[engine_opts],
    )
    loadp.add_argument(
        "--url", default=None, metavar="URL",
        help="target a running `repro serve` instance (default: self-host "
             "an ephemeral service built from the engine options)",
    )
    loadp.add_argument(
        "--tenants", type=int, default=2, metavar="N",
        help="concurrent tenants, one thread each (default: 2)",
    )
    loadp.add_argument(
        "--requests", type=int, default=4, metavar="M",
        help="requests per tenant (default: 4)",
    )
    loadp.add_argument(
        "--seed", type=int, default=0,
        help="traffic-mix seed; same seed, same requests (default: 0)",
    )
    loadp.add_argument(
        "--warm-fraction", type=float, default=0.5, metavar="F",
        help="fraction of requests repeating the shared warm cell "
             "(default: 0.5)",
    )
    loadp.add_argument(
        "--bench", default="BENCH_service.json", metavar="PATH",
        help="benchmark trajectory file to append the run record to; "
             "empty string disables (default: BENCH_service.json)",
    )
    loadp.add_argument(
        "--label", default="loadtest",
        help="label stored on the run record (default: loadtest)",
    )
    slo_group = loadp.add_argument_group("SLO thresholds")
    slo_group.add_argument(
        "--slo-p50", type=float, default=2.0, metavar="S",
        help="max p50 latency in seconds (default: 2.0)",
    )
    slo_group.add_argument(
        "--slo-p95", type=float, default=15.0, metavar="S",
        help="max p95 latency in seconds (default: 15.0)",
    )
    slo_group.add_argument(
        "--slo-p99", type=float, default=30.0, metavar="S",
        help="max p99 latency in seconds (default: 30.0)",
    )
    slo_group.add_argument(
        "--slo-max-error-rate", type=float, default=0.0, metavar="F",
        help="max fraction of requests ending in error (default: 0)",
    )
    slo_group.add_argument(
        "--slo-max-429-rate", type=float, default=0.9, metavar="F",
        help="max fraction of requests seeing a 429 (default: 0.9)",
    )
    queryp = sub.add_parser(
        "query",
        help="answer one TPI-optimization query (locally, or against a "
             "running service with --url)",
        parents=[engine_opts],
    )
    queryp.add_argument(
        "structure", choices=("dcache", "iqueue", "tlb", "bpred"),
        help="adaptive structure to optimize",
    )
    queryp.add_argument("workload", help="application name (see `repro suite`)")
    queryp.add_argument(
        "--predictor", choices=("gshare", "bimodal"), default="gshare",
        help="predictor organisation for bpred queries (default: gshare)",
    )
    queryp.add_argument(
        "--tenant", default="anonymous",
        help="tenant to bill the query to with --url (default: anonymous)",
    )
    queryp.add_argument(
        "--url", default=None, metavar="URL",
        help="query a running `repro serve` instance instead of computing "
             "locally",
    )
    queryp.add_argument(
        "--json", action="store_true",
        help="print the full OptimizationResult as JSON",
    )
    lintp = sub.add_parser(
        "lint",
        help="domain-aware static analysis: determinism, unit safety, "
             "conventions (RPR rules)",
    )
    lintp.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lintp.add_argument(
        "--format", dest="output_format", choices=("human", "json", "sarif"),
        default="human", help="output format (default: human)",
    )
    lintp.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    lintp.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lintp.add_argument(
        "--graph", action="store_true",
        help="dump the resolved cross-module call graph as JSON and exit",
    )
    lintp.add_argument(
        "--no-project", action="store_true",
        help="skip the cross-module project pass (RPR009-RPR012)",
    )
    lintp.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk analysis cache",
    )
    sub.add_parser("suite", help="print the calibrated application suite")
    sub.add_parser("clock", help="print the CAP clock table")
    sub.add_parser("power", help="print the Section 4.1 power modes")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.close(1)
        return 0


def _dispatch(args) -> int:
    if args.command == "figures":
        print("regenerable figures:", ", ".join(sorted(_FIGURES)))
    elif args.command == "figure":
        engine = _engine_from_args(args)
        _run_observed(
            args, "figure", lambda: _FIGURES[args.id](engine), figure=args.id
        )
        if args.telemetry:
            _print_telemetry_summary(args.telemetry)
    elif args.command == "ablations":
        print("ablations:", ", ".join(_ABLATIONS))
    elif args.command == "ablation":
        engine = _engine_from_args(args)
        _run_observed(
            args, "ablation", lambda: _ablation(args.name, engine),
            ablation=args.name,
        )
        if args.telemetry:
            _print_telemetry_summary(args.telemetry)
    elif args.command == "extensions":
        print("extensions:", ", ".join(_EXTENSIONS))
    elif args.command == "extension":
        engine = _engine_from_args(args)
        _run_observed(
            args, "extension", lambda: _extension(args.name, engine),
            extension=args.name,
        )
        if args.telemetry:
            _print_telemetry_summary(args.telemetry)
    elif args.command == "obs":
        if args.obs_command == "summarize":
            return _obs_summarize(args.path)
        if args.obs_command == "critical-path":
            return _obs_critical_path(args.path, args.trace_id)
        return _obs_check()
    elif args.command == "cache-verify":
        return _cache_verify(args.cache_dir)
    elif args.command == "resilience":
        return _resilience_check()
    elif args.command == "degrade":
        engine = _engine_from_args(args)
        _run_observed(args, "degrade", lambda: _degrade(args, engine))
        if args.telemetry:
            _print_telemetry_summary(args.telemetry)
    elif args.command == "robust":
        return _robust_check()
    elif args.command == "serve":
        return _serve(args, _engine_from_args(args))
    elif args.command == "worker":
        return _worker(args)
    elif args.command == "loadtest":
        return _loadtest(args)
    elif args.command == "chaos":
        from repro.service.chaos import format_report, run_chaos

        report = run_chaos(seed=args.seed, workdir=args.workdir)
        print(format_report(report))
        return 0 if report.passed else 1
    elif args.command == "query":
        return _query(args, _engine_from_args(args))
    elif args.command == "lint":
        from repro.analysis import main as lint_main

        select = (
            [r.strip() for r in args.select.split(",") if r.strip()]
            if args.select
            else None
        )
        return lint_main(
            args.paths,
            output_format=args.output_format,
            select=select,
            list_rules=args.list_rules,
            project=not args.no_project,
            use_cache=not args.no_cache,
            graph=args.graph,
        )
    elif args.command == "cache-clear":
        engine = ExperimentEngine(cache_dir=args.cache_dir)
        dropped = engine.invalidate_cache(kind=args.kind)
        print(f"dropped {dropped} cached result(s) from {args.cache_dir}")
    elif args.command == "export":
        from repro.experiments.export import export_all, export_figure

        if args.id == "all":
            for path in export_all(args.out):
                print(f"wrote {path}")
        else:
            print(f"wrote {export_figure(args.id, args.out)}")
    elif args.command == "suite":
        _suite()
    elif args.command == "clock":
        _clock()
    elif args.command == "power":
        _power()
    return 0


if __name__ == "__main__":
    sys.exit(main())
