"""Physical units and conversion helpers used throughout the library.

All delays inside :mod:`repro` are expressed in **nanoseconds**, all
capacities in **bytes**, and all wire geometry in **millimetres**.  The
handful of helpers here keep those conventions explicit at module
boundaries, where the paper quotes values in mixed units (picoseconds for
gate delays, KB for cache sizes, microns for feature sizes).
"""

from __future__ import annotations

#: Bytes per kilobyte.  The paper (and all cache literature of the era)
#: uses binary kilobytes.
KB: int = 1024

#: Nanoseconds per picosecond.
PS: float = 1e-3

#: Reference feature size (microns) at which the technology parameters in
#: :mod:`repro.tech.parameters` are calibrated.
REFERENCE_FEATURE_UM: float = 0.25

#: The three feature sizes studied in the paper's Figures 1 and 2.
PAPER_FEATURE_SIZES_UM: tuple[float, ...] = (0.25, 0.18, 0.12)


def kb(n: float) -> int:
    """Return *n* kilobytes expressed in bytes.

    >>> kb(8)
    8192
    """
    return int(n * KB)


def to_kb(n_bytes: float) -> float:
    """Return *n_bytes* expressed in kilobytes.

    >>> to_kb(8192)
    8.0
    """
    return n_bytes / KB


def ps(n: float) -> float:
    """Return *n* picoseconds expressed in nanoseconds.

    >>> ps(500)
    0.5
    """
    return n * PS


def ns_to_mhz(cycle_time_ns: float) -> float:
    """Return the clock frequency in MHz for a cycle time in ns.

    >>> ns_to_mhz(2.0)
    500.0
    """
    if cycle_time_ns <= 0:
        raise ValueError(f"cycle time must be positive, got {cycle_time_ns}")
    return 1e3 / cycle_time_ns


def mhz_to_ns(frequency_mhz: float) -> float:
    """Return the cycle time in ns for a clock frequency in MHz.

    Inverse of :func:`ns_to_mhz`.

    >>> mhz_to_ns(500.0)
    2.0
    """
    if frequency_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    return 1e3 / frequency_mhz


def feature_scale(feature_um: float) -> float:
    """Linear scaling factor of transistor delay relative to 0.25 micron.

    The paper assumes that, to first order, transistor (and hence buffer)
    delays scale linearly with feature size while wire delays remain
    constant.  ``feature_scale(0.25) == 1.0``.
    """
    if feature_um <= 0:
        raise ValueError(f"feature size must be positive, got {feature_um}")
    return feature_um / REFERENCE_FEATURE_UM
