"""Graceful-degradation study: TPI retained on broken, noisy hardware.

The paper evaluates CAPs on perfect hardware: every increment works and
the monitoring counters report exact TPI.  This study asks how much of
the adaptive advantage survives when neither holds.  For each structure
(cache, queue, TLB, branch predictor) it sweeps a grid of

* **fault count** — a fraction of the structure's non-minimal hardware
  increments marked failed (deterministically drawn by
  :class:`~repro.robust.faults.HardwareFaultModel`), shrinking the
  reachable configuration set, and
* **sensor noise** — multiplicative error on every TPI measurement the
  Configuration Manager's candidate evaluation sees
  (:class:`~repro.robust.sensors.NoisySensor`),

then runs several process-level adaptation rounds under the TPI
watchdog and reports **TPI retained**: the fault-free oracle TPI (best
designed configuration, clean sensors) divided by the TPI the degraded
machine actually settles on.  1.0 means no loss; the gap decomposes
into the *capability* loss (the oracle configuration is masked) and the
*control* loss (noise steered the selection somewhere worse).

Per-configuration true-TPI tables come from the engine's sweep cells,
so the study shares the cache/parallelism machinery (and result cache)
with every other experiment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.branch.adaptive import AdaptiveBranchPredictor
from repro.branch.predictors import PredictorKind
from repro.cache.adaptive import AdaptiveCacheHierarchy
from repro.core.clock import DynamicClock
from repro.core.manager import ConfigurationManager
from repro.core.structure import ComplexityAdaptiveStructure
from repro.engine.cells import (
    SweepCell,
    branch_tpi_cell,
    cache_tpi_cell,
    queue_tpi_cell,
    tlb_tpi_cell,
)
from repro.engine.engine import ExperimentEngine
from repro.errors import ConfigurationError
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.ooo.adaptive import AdaptiveInstructionQueue
from repro.ooo.timing import QueueTimingModel
from repro.robust.faults import HardwareFaultModel
from repro.robust.guardrails import TpiWatchdog
from repro.robust.sensors import NoisySensor, SensorNoiseConfig
from repro.tlb.adaptive import AdaptiveTlb
from repro.workloads.suite import get_profile

#: Structures in the study, with the workload each one's TPI table uses
#: (matching the pairings of the main figure studies).
STUDY_STRUCTURES: tuple[str, ...] = ("dcache", "iqueue", "tlb", "bpred")


@dataclass(frozen=True)
class DegradationCell:
    """One (structure, fault level, noise level) outcome."""

    structure: str
    fail_fraction: float
    noise_fraction: float
    n_designed: int
    n_reachable: int
    #: Best TPI over every *designed* configuration (fault-free oracle).
    oracle_tpi_ns: float
    #: Best TPI over the *reachable* configurations — the capability
    #: ceiling; no controller can beat this on the degraded machine.
    degraded_oracle_tpi_ns: float
    #: TPI of the configuration the adaptive machine settled on.
    final_tpi_ns: float
    n_regressions: int
    n_fallbacks: int
    #: Regressions where a strictly better safe configuration was known
    #: but the watchdog failed to move — always 0 by construction.
    n_unrecovered: int

    @property
    def retained(self) -> float:
        """Fraction of fault-free oracle performance retained (<= 1)."""
        return self.oracle_tpi_ns / self.final_tpi_ns

    @property
    def control_gap(self) -> float:
        """Loss attributable to noisy control rather than dead hardware:
        final TPI relative to the degraded machine's own ceiling."""
        return self.final_tpi_ns / self.degraded_oracle_tpi_ns - 1.0


@dataclass(frozen=True)
class DegradationStudy:
    """Full sweep grid across structures."""

    cells: tuple[DegradationCell, ...]
    seed: int
    n_rounds: int

    def for_structure(self, structure: str) -> tuple[DegradationCell, ...]:
        """Every grid cell of one structure."""
        return tuple(c for c in self.cells if c.structure == structure)

    def worst_retained(self) -> float:
        """The worst retained fraction anywhere in the grid."""
        return min(c.retained for c in self.cells)

    def total_unrecovered(self) -> int:
        """Regressions left unrecovered across the grid (should be 0)."""
        return sum(c.n_unrecovered for c in self.cells)


def _structure_instances() -> dict[str, ComplexityAdaptiveStructure]:
    return {
        "dcache": AdaptiveCacheHierarchy(),
        "iqueue": AdaptiveInstructionQueue(),
        "tlb": AdaptiveTlb(),
        "bpred": AdaptiveBranchPredictor(),
    }


def _tpi_cells(
    structures: Mapping[str, ComplexityAdaptiveStructure],
    n_refs: int,
    warmup_refs: int,
    n_instructions: int,
    n_branches: int,
) -> dict[str, SweepCell]:
    compress, stereo = get_profile("compress"), get_profile("stereo")
    return {
        "dcache": cache_tpi_cell(
            compress, n_refs, warmup_refs,
            tuple(structures["dcache"]._all_configurations()),
        ),
        "iqueue": queue_tpi_cell(
            compress, n_instructions,
            tuple(structures["iqueue"]._all_configurations()),
        ),
        "tlb": tlb_tpi_cell(stereo, n_refs, warmup_refs),
        "bpred": branch_tpi_cell(stereo, PredictorKind.GSHARE, n_branches),
    }


def _tpi_table(structure: str, payload: Mapping) -> dict[Hashable, float]:
    """Config -> true TPI (ns) from one sweep-cell payload."""
    if structure == "iqueue":
        timing = QueueTimingModel()
        return {
            int(w): timing.cycle_time_ns(int(w)) / row["ipc"]
            for w, row in payload["results"].items()
        }
    return {
        int(cfg): row["tpi_ns"] for cfg, row in payload["breakdowns"].items()
    }


def _run_cell(
    cas: ComplexityAdaptiveStructure,
    table: Mapping[Hashable, float],
    fail_fraction: float,
    noise_fraction: float,
    seed: int,
    n_rounds: int,
    tolerance: float,
) -> DegradationCell:
    """One adaptive run on one degraded, noisy machine."""
    name = cas.name
    designed = tuple(cas._all_configurations())
    fault_model = HardwareFaultModel.seeded(
        seed, {name: len(designed)}, fail_fraction
    )
    fault_model.apply(cas)
    reachable = tuple(cas.configurations())

    sensor = NoisySensor(
        SensorNoiseConfig(noise_fraction=noise_fraction), seed=seed
    )
    clock = DynamicClock(adaptive_structures=(cas,))
    manager = ConfigurationManager(
        clock=clock, structures=(cas,), watchdog=TpiWatchdog(tolerance=tolerance)
    )
    process = f"degrade:{name}"

    # Bootstrap measurement: the machine profiles its fastest reachable
    # configuration once with the true (long-run, averaged) TPI, so the
    # watchdog always has at least one trusted safe point.
    boot = cas.fastest_configuration()
    manager.watchdog.record(process, name, boot, table[boot])

    ticks = itertools.count()
    n_regressions = 0
    n_fallbacks = 0
    n_unrecovered = 0
    for _ in range(n_rounds):
        decision = manager.select_for_process(
            process, name,
            lambda cfg: sensor.read_required(next(ticks), table[cfg]),
        )
        manager.apply(name, decision.configuration, trigger="degrade_study")
        achieved = table[decision.configuration]
        verdict = manager.report_achieved(process, name, achieved)
        if verdict.regression:
            n_regressions += 1
            if verdict.fallback is not None:
                n_fallbacks += 1
            else:
                # holding is only safe if nothing measured better exists
                history = manager.watchdog.achieved_history(process, name)
                better = [
                    c for c, t in history.items()
                    if c in reachable and c != decision.configuration
                    and t < achieved
                ]
                if better:
                    n_unrecovered += 1

    final = manager.saved_configuration(process, name)
    return DegradationCell(
        structure=name,
        fail_fraction=fail_fraction,
        noise_fraction=noise_fraction,
        n_designed=len(designed),
        n_reachable=len(reachable),
        oracle_tpi_ns=min(table[c] for c in designed),
        degraded_oracle_tpi_ns=min(table[c] for c in reachable),
        final_tpi_ns=table[final],
        n_regressions=n_regressions,
        n_fallbacks=n_fallbacks,
        n_unrecovered=n_unrecovered,
    )


def degradation_study(
    fail_fractions: Sequence[float] = (0.0, 0.25, 0.5),
    noise_fractions: Sequence[float] = (0.0, 0.1),
    seed: int = 0,
    n_rounds: int = 12,
    tolerance: float = 0.05,
    n_refs: int = 4_000,
    warmup_refs: int = 1_000,
    n_instructions: int = 2_000,
    n_branches: int = 2_000,
    engine: ExperimentEngine | None = None,
) -> DegradationStudy:
    """Sweep fault count x sensor noise over all four structures.

    Each grid point builds a fresh structure, injects the seeded fault
    set, and runs ``n_rounds`` of noisy process-level adaptation under
    the TPI watchdog.  Deterministic: the same ``seed`` reproduces the
    same fault sets, the same noise draws, and the same outcomes.
    """
    if n_rounds < 1:
        raise ConfigurationError(f"n_rounds must be >= 1, got {n_rounds}")
    if engine is None:
        engine = ExperimentEngine()
    structures = _structure_instances()
    cells = _tpi_cells(
        structures, n_refs, warmup_refs, n_instructions, n_branches
    )
    order = STUDY_STRUCTURES
    payloads = dict(zip(order, engine.map([cells[s] for s in order])))

    out: list[DegradationCell] = []
    with obs.span(
        "degradation_study", level="run",
        fail_fractions=list(fail_fractions),
        noise_fractions=list(noise_fractions), seed=seed,
    ):
        for structure in order:
            table = _tpi_table(structure, payloads[structure])
            for fail_fraction in fail_fractions:
                for noise_fraction in noise_fractions:
                    with obs.span(
                        "degradation_cell", level="section",
                        structure=structure, fail_fraction=fail_fraction,
                        noise_fraction=noise_fraction,
                    ) as sp:
                        cell = _run_cell(
                            _structure_instances()[structure],
                            table,
                            fail_fraction,
                            noise_fraction,
                            seed,
                            n_rounds,
                            tolerance,
                        )
                        sp.set(
                            retained=cell.retained,
                            final_tpi_ns=cell.final_tpi_ns,
                            n_regressions=cell.n_regressions,
                        )
                    metrics().gauge(
                        "repro_robust_retained_tpi_fraction",
                        "TPI retained vs the fault-free oracle",
                    ).set(
                        cell.retained,
                        structure=structure,
                        fail_fraction=str(fail_fraction),
                        noise_fraction=str(noise_fraction),
                    )
                    out.append(cell)
    return DegradationStudy(cells=tuple(out), seed=seed, n_rounds=n_rounds)
