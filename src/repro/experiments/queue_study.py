"""Figures 10 and 11: the complexity-adaptive instruction queue study.

Methodology, following the paper's Section 5.1:

* 8-way out-of-order machine, perfect branch prediction, perfect
  caches, plentiful functional units (the simulator idealises exactly
  these);
* queue sizes 16..128 in 16-entry increments; wakeup + select set the
  cycle time at every size (Palacharla model, 0.18 micron);
* each application runs the first N instructions (paper: 100 M; we
  default to a calibrated 16 k);
* conventional = fixed size minimising suite-average TPI (the paper
  finds 64 entries); process-level adaptive = per-app best size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import TpiComparison
from repro.errors import RemovedApiError
from repro.engine.cells import queue_tpi_cell
from repro.engine.engine import ExperimentEngine, default_engine
from repro.ooo.machine import MachineResult, run_window_sweep
from repro.ooo.timing import PAPER_QUEUE_SIZES, QueueTimingModel
from repro.workloads.instruction_trace import generate_instruction_trace
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.suite import queue_study_profiles

#: Default measured trace length (instructions per application).
DEFAULT_N_INSTRUCTIONS: int = 16_000

_SWEEP_CACHE: dict[tuple, dict[int, MachineResult]] = {}


def _machine_sweep(
    profile: BenchmarkProfile,
    n_instructions: int = DEFAULT_N_INSTRUCTIONS,
    sizes: tuple[int, ...] = PAPER_QUEUE_SIZES,
) -> dict[int, MachineResult]:
    """Machine results for one application at every queue size (memoised)."""
    key = (profile.name, n_instructions, sizes, profile.seed)
    hit = _SWEEP_CACHE.get(key)
    if hit is not None:
        return hit
    trace = generate_instruction_trace(profile.ilp, n_instructions, profile.seed)
    results = run_window_sweep(trace, sizes)
    _SWEEP_CACHE[key] = results
    return results


def sweep_for(*args: object, **kwargs: object) -> dict[int, MachineResult]:
    """Removed alias of the internal machine sweep.

    .. deprecated:: 1.1
    .. versionremoved:: 1.2
        The deprecation cycle is complete.  Query through
        :func:`repro.api.run_query` with an ``iqueue`` request.
    """
    raise RemovedApiError(
        "queue_study.sweep_for was removed after its deprecation cycle; "
        "query through repro.api.run_query(OptimizationRequest('iqueue', "
        "workload))"
    )


def queue_tpi_table(
    n_instructions: int = DEFAULT_N_INSTRUCTIONS,
    timing: QueueTimingModel | None = None,
    *,
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[int, float]]:
    """TPI per application per queue size.

    The default-timing path routes through the public query API (one
    :class:`~repro.api.OptimizationRequest` per application, batched
    into a single engine ``map``); a custom ``timing`` model keeps the
    raw-cell path, applying its cycle table to the simulated IPCs
    locally so it still rides the parallel/cached engine.
    """
    profiles = queue_study_profiles()
    if timing is None:
        from repro.api import OptimizationRequest, run_queries

        requests = [
            OptimizationRequest(
                "iqueue", profile.name, n_instructions=n_instructions
            )
            for profile in profiles
        ]
        results = run_queries(requests, engine=engine)
        return {
            profile.name: {
                point.config: point.tpi_ns for point in result.sweep
            }
            for profile, result in zip(profiles, results)
        }
    cycles = timing.cycle_table()
    eng = engine if engine is not None else default_engine()
    cells = [
        queue_tpi_cell(profile, n_instructions, timing.sizes)
        for profile in profiles
    ]
    payloads = eng.map(cells)
    return {
        profile.name: {
            w: cycles[w] / payload["results"][str(w)]["ipc"] for w in timing.sizes
        }
        for profile, payload in zip(profiles, payloads)
    }


def figure10(
    n_instructions: int = DEFAULT_N_INSTRUCTIONS,
    *,
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Average TPI vs. queue size: ``{"integer"|"floating": {app: {size: tpi}}}``."""
    table = queue_tpi_table(n_instructions, engine=engine)
    panels: dict[str, dict[str, dict[int, float]]] = {"integer": {}, "floating": {}}
    for profile in queue_study_profiles():
        panels[profile.domain][profile.name] = table[profile.name]
    return panels


@dataclass(frozen=True)
class QueueStudyResult:
    """Everything Figure 11 plots, plus selection metadata."""

    conventional_size: int
    best_sizes: dict[str, int]
    tpi: TpiComparison
    table: dict[str, dict[int, float]] = field(repr=False)


def figure11(
    n_instructions: int = DEFAULT_N_INSTRUCTIONS,
    timing: QueueTimingModel | None = None,
    *,
    engine: ExperimentEngine | None = None,
) -> QueueStudyResult:
    """Best conventional vs. process-level adaptive queue sizing."""
    table = queue_tpi_table(n_instructions, timing, engine=engine)
    sizes = sorted(next(iter(table.values())))
    apps = list(table)

    def suite_average(w: int) -> float:
        return sum(table[app][w] for app in apps) / len(apps)

    conventional = min(sizes, key=suite_average)
    best = {app: min(sizes, key=lambda w: table[app][w]) for app in apps}
    tpi = TpiComparison(
        metric_name="Avg TPI (ns)",
        conventional={app: table[app][conventional] for app in apps},
        adaptive={app: table[app][best[app]] for app in apps},
    )
    return QueueStudyResult(
        conventional_size=conventional,
        best_sizes=best,
        tpi=tpi,
        table=table,
    )
