"""Robustness of the headline results to methodology knobs.

The reproduction shortens the paper's 100 M-event traces to tens of
thousands of events (see docs/calibration.md).  This module verifies
that the conclusions do not hinge on those lengths: it reruns the two
headline studies at multiple trace lengths and reports how the
conventional configuration, the per-application winners and the average
reductions move.  Stationary generators should make them nearly
invariant — and the bench asserts that they are.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.engine import ExperimentEngine
from repro.experiments.cache_study import DEFAULT_N_REFS, DEFAULT_WARMUP_REFS, figure8_9
from repro.experiments.queue_study import DEFAULT_N_INSTRUCTIONS, figure11


@dataclass(frozen=True)
class RobustnessPoint:
    """One study rerun at one trace length."""

    length: int
    conventional: int
    average_reduction_percent: float
    best_configs: dict[str, int]


@dataclass(frozen=True)
class RobustnessResult:
    """A study's behaviour across trace lengths."""

    study: str
    points: tuple[RobustnessPoint, ...]

    @property
    def conventional_stable(self) -> bool:
        """Does the suite-best configuration survive every length?"""
        return len({p.conventional for p in self.points}) == 1

    @property
    def reduction_spread_percent(self) -> float:
        """Max minus min of the average reductions across lengths."""
        values = [p.average_reduction_percent for p in self.points]
        return max(values) - min(values)

    def winner_agreement(self) -> float:
        """Fraction of applications whose best config is identical at
        every length."""
        apps = self.points[0].best_configs.keys()
        stable = sum(
            1
            for app in apps
            if len({p.best_configs[app] for p in self.points}) == 1
        )
        return stable / len(apps)


def cache_length_robustness(
    scales: tuple[float, ...] = (0.5, 1.0, 2.0),
    *,
    engine: ExperimentEngine | None = None,
) -> RobustnessResult:
    """Rerun the cache study at scaled trace lengths."""
    points = []
    for scale in scales:
        n = int(DEFAULT_N_REFS * scale)
        warm = int(DEFAULT_WARMUP_REFS * scale)
        study = figure8_9(n_refs=n, warmup_refs=warm, engine=engine)
        points.append(
            RobustnessPoint(
                length=n,
                conventional=study.conventional_boundary,
                average_reduction_percent=study.tpi.average_reduction_percent(),
                best_configs=dict(study.best_boundaries),
            )
        )
    return RobustnessResult(study="cache", points=tuple(points))


def queue_length_robustness(
    scales: tuple[float, ...] = (0.5, 1.0, 1.5),
    *,
    engine: ExperimentEngine | None = None,
) -> RobustnessResult:
    """Rerun the queue study at scaled trace lengths."""
    points = []
    for scale in scales:
        n = int(DEFAULT_N_INSTRUCTIONS * scale)
        study = figure11(n_instructions=n, engine=engine)
        points.append(
            RobustnessPoint(
                length=n,
                conventional=study.conventional_size,
                average_reduction_percent=study.tpi.average_reduction_percent(),
                best_configs=dict(study.best_sizes),
            )
        )
    return RobustnessResult(study="queue", points=tuple(points))
