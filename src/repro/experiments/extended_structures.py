"""Extension studies: TLB, branch predictor, and all structures in concert.

The paper's Section 5.4 argues its techniques "may be applied in
concert to other critical parts of the machine (such as TLBs and branch
predictors) to yield even greater performance improvements (although
the number of configurations for a given structure might be limited due
to larger delays in other structures)".  This module builds exactly
that evaluation:

* :func:`tlb_study` — process-level adaptive fast-section sizing of the
  backup-organised TLB (Section 4.2's single/two-cycle element idea).
* :func:`branch_study` — process-level adaptive predictor-table sizing,
  for either predictor organisation.
* :func:`concert_study` — the joint design space: every application
  picks (cache boundary, queue size, TLB fast section, predictor size)
  at once; the clock is the max of all four structure delays, so big
  settings of one structure make big settings of the others free — the
  interaction the paper warns about, measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api import OptimizationRequest, run_queries
from repro.branch.timing import BranchTimingModel
from repro.branch.tpi import BranchTpiModel
from repro.branch.workloads import BRANCH_FRACTION
from repro.branch.predictors import PredictorKind
from repro.cache.config import PAPER_GEOMETRY, PAPER_MAX_L1_INCREMENTS
from repro.cache.timing import CacheTimingModel
from repro.core.metrics import TpiComparison
from repro.engine.cells import (
    branch_tpi_cell,
    cached_tlb_histogram,
    queue_tpi_cell,
)
from repro.engine.engine import ExperimentEngine, default_engine
from repro.experiments.cache_study import histogram_for
from repro.ooo.timing import PAPER_QUEUE_SIZES, QueueTimingModel
from repro.tlb.simulator import TlbDepthHistogram
from repro.tlb.timing import TlbTimingModel
from repro.workloads.suite import cache_study_profiles

#: TLB study trace sizes.
TLB_N_REFS: int = 30_000
TLB_WARMUP: int = 10_000
#: Branch study trace size.
BRANCH_N: int = 16_000


def _tlb_histogram(profile) -> TlbDepthHistogram:
    return cached_tlb_histogram(profile, TLB_N_REFS, TLB_WARMUP)


def _branch_tables(
    kind: PredictorKind, engine: ExperimentEngine | None
) -> dict[str, dict[int, dict]]:
    """Branch payload rows per application: app -> size -> row."""
    eng = engine if engine is not None else default_engine()
    profiles = cache_study_profiles()
    cells = [branch_tpi_cell(profile, kind, BRANCH_N) for profile in profiles]
    payloads = eng.map(cells)
    return {
        profile.name: {
            int(s): row for s, row in payload["breakdowns"].items()
        }
        for profile, payload in zip(profiles, payloads)
    }


@dataclass(frozen=True)
class StructureStudyResult:
    """Conventional-vs-adaptive comparison for one extension structure."""

    structure: str
    conventional_config: int
    best_configs: dict[str, int]
    tpi: TpiComparison


def tlb_study(*, engine: ExperimentEngine | None = None) -> StructureStudyResult:
    """Process-level adaptive TLB fast-section sizing across the suite.

    Routes through the public query API — one
    :class:`~repro.api.OptimizationRequest` per application, batched
    into a single engine ``map`` — so this harness answers exactly the
    cells the sweep service answers.
    """
    profiles = cache_study_profiles()
    requests = [
        OptimizationRequest(
            "tlb", profile.name, n_refs=TLB_N_REFS, warmup_refs=TLB_WARMUP
        )
        for profile in profiles
    ]
    results = run_queries(requests, engine=engine)
    table = {
        profile.name: {point.config: point.tpi_ns for point in result.sweep}
        for profile, result in zip(profiles, results)
    }
    return _summarise("tlb", table)


def branch_study(
    kind: PredictorKind = PredictorKind.GSHARE,
    *,
    engine: ExperimentEngine | None = None,
) -> StructureStudyResult:
    """Process-level adaptive predictor-table sizing across the suite.

    Routes through the public query API like :func:`tlb_study`.
    """
    profiles = cache_study_profiles()
    requests = [
        OptimizationRequest(
            "bpred", profile.name, predictor=kind.value, n_branches=BRANCH_N
        )
        for profile in profiles
    ]
    results = run_queries(requests, engine=engine)
    table = {
        profile.name: {point.config: point.tpi_ns for point in result.sweep}
        for profile, result in zip(profiles, results)
    }
    return _summarise(f"bpred-{kind.value}", table)


def _summarise(structure: str, table: dict[str, dict[int, float]]) -> StructureStudyResult:
    apps = list(table)
    configs = sorted(next(iter(table.values())))
    conventional = min(
        configs, key=lambda c: sum(table[app][c] for app in apps)
    )
    best = {app: min(configs, key=lambda c: table[app][c]) for app in apps}
    comparison = TpiComparison(
        metric_name="Avg TPI (ns)",
        conventional={app: table[app][conventional] for app in apps},
        adaptive={app: table[app][best[app]] for app in apps},
    )
    return StructureStudyResult(
        structure=structure,
        conventional_config=conventional,
        best_configs=best,
        tpi=comparison,
    )


# ---------------------------------------------------------------------------
# All structures in concert
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConcertConfig:
    """One point of the joint design space."""

    cache_boundary: int
    queue_entries: int
    tlb_fast_entries: int
    predictor_entries: int


@dataclass(frozen=True)
class ConcertStudyResult:
    """Joint adaptivity versus a joint conventional configuration."""

    conventional: ConcertConfig
    best_configs: dict[str, ConcertConfig]
    tpi: TpiComparison
    #: How many joint configurations share the conventional cycle time —
    #: the Section 5.4 "configurations limited by other structures".
    dominated_fraction: float


@dataclass
class _ConcertSpace:
    cache_boundaries: tuple[int, ...]
    queue_sizes: tuple[int, ...]
    tlb_boundaries: tuple[int, ...]
    predictor_sizes: tuple[int, ...]
    cache_delay: dict[int, float]
    queue_delay: dict[int, float]
    tlb_delay: dict[int, float]
    predictor_delay: dict[int, float]


def _concert_space() -> _ConcertSpace:
    cache_timing = CacheTimingModel()
    queue_timing = QueueTimingModel()
    tlb_timing = TlbTimingModel()
    branch_timing = BranchTimingModel()
    cache_boundaries = PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
    return _ConcertSpace(
        cache_boundaries=cache_boundaries,
        queue_sizes=PAPER_QUEUE_SIZES,
        tlb_boundaries=tlb_timing.boundaries(),
        predictor_sizes=tuple(sorted(branch_timing.sizes)),
        cache_delay={k: cache_timing.l1_access_time_ns(k) for k in cache_boundaries},
        queue_delay={w: queue_timing.cycle_time_ns(w) for w in PAPER_QUEUE_SIZES},
        tlb_delay={f: tlb_timing.lookup_time_ns(f) for f in tlb_timing.boundaries()},
        predictor_delay={
            s: branch_timing.lookup_time_ns(s) for s in sorted(branch_timing.sizes)
        },
    )


def _concert_tpi_table(
    kind: PredictorKind,
    n_instructions: int,
    engine: ExperimentEngine | None = None,
) -> tuple[dict[str, np.ndarray], _ConcertSpace]:
    """Per-app joint TPI tensor, axes (cache, queue, tlb, predictor)."""
    space = _concert_space()
    cache_timing = CacheTimingModel()
    l2_access = cache_timing.l2_access_time_ns()
    miss_ns = cache_timing.miss_latency_ns()
    tlb_timing = TlbTimingModel()
    walk_ns = tlb_timing.page_walk_ns()
    backup_cycles = tlb_timing.backup_extra_cycles()
    penalty = BranchTpiModel(kind=kind).penalty_cycles

    # Fan out the simulated inputs (queue IPCs, misprediction rates) as
    # one batch; histograms stay in the per-process memo.
    eng = engine if engine is not None else default_engine()
    profiles = cache_study_profiles()
    queue_payloads = eng.map(
        [
            queue_tpi_cell(profile, n_instructions, space.queue_sizes)
            for profile in profiles
        ]
    )
    ipcs_by_app = {
        profile.name: {
            w: payload["results"][str(w)]["ipc"] for w in space.queue_sizes
        }
        for profile, payload in zip(profiles, queue_payloads)
    }
    rates_by_app = {
        app: {s: row["misprediction_rate"] for s, row in rows.items()}
        for app, rows in _branch_tables(kind, eng).items()
    }

    tables: dict[str, np.ndarray] = {}
    for profile in profiles:
        ls = profile.memory.load_store_fraction
        cache_hist = histogram_for(profile)
        n_refs = cache_hist.n_references
        n_instr = n_refs / ls
        tlb_hist = _tlb_histogram(profile)
        tlb_instr = tlb_hist.n_accesses / ls
        rates = rates_by_app[profile.name]
        ipcs = ipcs_by_app[profile.name]

        shape = (
            len(space.cache_boundaries),
            len(space.queue_sizes),
            len(space.tlb_boundaries),
            len(space.predictor_sizes),
        )
        tpi = np.empty(shape)
        for ci, k in enumerate(space.cache_boundaries):
            l2_hits = cache_hist.l2_hits(k)
            misses = cache_hist.misses(k)
            for qi, w in enumerate(space.queue_sizes):
                ipc = ipcs[w]
                for ti, f in enumerate(space.tlb_boundaries):
                    backup = tlb_hist.backup_hits(f)
                    walks = tlb_hist.walk_count()
                    for bi, s in enumerate(space.predictor_sizes):
                        cycle = max(
                            space.cache_delay[k],
                            space.queue_delay[w],
                            space.tlb_delay[f],
                            space.predictor_delay[s],
                        )
                        l2_cycles = math.ceil(l2_access / cycle)
                        cache_stall = (
                            l2_hits * l2_cycles * cycle + misses * miss_ns
                        ) / n_instr
                        tlb_stall = (
                            backup * backup_cycles * cycle + walks * walk_ns
                        ) / tlb_instr
                        branch_cpi = BRANCH_FRACTION * rates[s] * penalty
                        tpi[ci, qi, ti, bi] = (
                            cycle * (1.0 / ipc + branch_cpi)
                            + cache_stall
                            + tlb_stall
                        )
        tables[profile.name] = tpi
    return tables, space


def concert_study(
    kind: PredictorKind = PredictorKind.GSHARE,
    n_instructions: int = 16_000,
    *,
    engine: ExperimentEngine | None = None,
) -> ConcertStudyResult:
    """Jointly adapt all four structures, per application."""
    tables, space = _concert_tpi_table(kind, n_instructions, engine)
    apps = list(tables)
    total = np.zeros_like(next(iter(tables.values())))
    for tpi in tables.values():
        total += tpi
    conv_idx = np.unravel_index(int(np.argmin(total)), total.shape)
    conventional = ConcertConfig(
        cache_boundary=space.cache_boundaries[conv_idx[0]],
        queue_entries=space.queue_sizes[conv_idx[1]],
        tlb_fast_entries=space.tlb_boundaries[conv_idx[2]],
        predictor_entries=space.predictor_sizes[conv_idx[3]],
    )
    best_configs: dict[str, ConcertConfig] = {}
    conventional_tpi: dict[str, float] = {}
    adaptive_tpi: dict[str, float] = {}
    for app in apps:
        tpi = tables[app]
        idx = np.unravel_index(int(np.argmin(tpi)), tpi.shape)
        best_configs[app] = ConcertConfig(
            cache_boundary=space.cache_boundaries[idx[0]],
            queue_entries=space.queue_sizes[idx[1]],
            tlb_fast_entries=space.tlb_boundaries[idx[2]],
            predictor_entries=space.predictor_sizes[idx[3]],
        )
        conventional_tpi[app] = float(tpi[conv_idx])
        adaptive_tpi[app] = float(tpi[idx])

    # Section 5.4 interaction: with the conventional queue flooring the
    # clock, how many cache boundaries fail to change the cycle time?
    floor = space.queue_delay[conventional.queue_entries]
    dominated = sum(
        1 for k in space.cache_boundaries if space.cache_delay[k] <= floor
    )
    return ConcertStudyResult(
        conventional=conventional,
        best_configs=best_configs,
        tpi=TpiComparison(
            metric_name="Avg TPI (ns)",
            conventional=conventional_tpi,
            adaptive=adaptive_tpi,
        ),
        dominated_fraction=dominated / len(space.cache_boundaries),
    )
