"""Plain-text rendering of experiment results.

The benchmark harnesses print the same rows/series the paper's figures
plot; these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        if len(cells) != len(headers):
            raise ReproError(
                f"row width {len(cells)} does not match header width {len(headers)}"
            )
        rendered.append(cells)
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    float_format: str = "{:.3f}",
) -> str:
    """Render named y-series against a shared x-axis (a figure's data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, float_format=float_format)
