"""Figures 12/13 and the Section 6 predictor evaluation.

The paper's finer-grained-adaptivity analysis compares, over consecutive
2000-instruction intervals, the TPI of two queue configurations:

* Figure 12 (turb3d): 64 vs. 128 entries over two long stable phases.
* Figure 13a (vortex): 16 vs. 64 entries alternating regularly
  (roughly every 15 intervals).
* Figure 13b (vortex): 16 vs. 64 entries varying almost randomly, with
  both configurations averaging the same.

Beyond reproducing the snapshots, :func:`predictor_study` evaluates the
mechanism the paper proposes: an interval-adaptive policy driven by a
pattern predictor with a confidence gate, compared against static
configurations and the switching oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policies import (
    IntervalAdaptivePolicy,
    OraclePolicy,
    PolicyOutcome,
    StaticPolicy,
    evaluate_policy,
)
from repro.core.predictor import ConfigurationPredictor
from repro.engine.cells import interval_series_cell
from repro.engine.engine import ExperimentEngine, default_engine
from repro.ooo.intervals import (
    IntervalSeries,
    PAPER_INTERVAL_INSTRUCTIONS,
    best_window_sequence,
)
from repro.workloads.phases import (
    PhasedWorkload,
    turb3d_snapshots,
    vortex_irregular,
    vortex_regular,
)

_SERIES_CACHE: dict[tuple, dict[int, IntervalSeries]] = {}


@dataclass(frozen=True)
class IntervalStudyResult:
    """Per-interval TPI of the two competing configurations."""

    workload: str
    series: dict[int, IntervalSeries]

    @property
    def windows(self) -> tuple[int, ...]:
        """The two configurations compared."""
        return tuple(sorted(self.series))

    def best_sequence(self) -> np.ndarray:
        """Per-interval best configuration (the oracle labels)."""
        return best_window_sequence(self.series)

    def stability_runs(self) -> list[tuple[int, int]]:
        """(window, run_length) for each maximal best-config run."""
        seq = self.best_sequence()
        runs: list[tuple[int, int]] = []
        start = 0
        for i in range(1, len(seq) + 1):
            if i == len(seq) or seq[i] != seq[start]:
                runs.append((int(seq[start]), i - start))
                start = i
        return runs


def _interval_series(
    workload: PhasedWorkload,
    windows: tuple[int, ...],
    seed: int,
    interval_instructions: int,
    engine: ExperimentEngine | None = None,
) -> dict[int, IntervalSeries]:
    key = (workload.name, windows, seed, interval_instructions, workload.n_instructions)
    hit = _SERIES_CACHE.get(key)
    if hit is not None:
        return hit
    segments = [(s.ilp, s.n_instructions) for s in workload.segments]
    cells = [
        interval_series_cell(
            workload.name, segments, w, seed, interval_instructions
        )
        for w in windows
    ]
    eng = engine if engine is not None else default_engine()
    series = {
        w: IntervalSeries(
            window=payload["window"],
            cycle_time_ns=payload["cycle_time_ns"],
            interval_instructions=payload["interval_instructions"],
            tpi_ns=np.array(payload["tpi_ns"], dtype=np.float64),
        )
        for w, payload in zip(windows, eng.map(cells))
    }
    _SERIES_CACHE[key] = series
    return series


def figure12(
    intervals_per_phase: int = 60,
    interval_instructions: int = PAPER_INTERVAL_INSTRUCTIONS,
    seed: int = 12,
    *,
    engine: ExperimentEngine | None = None,
) -> IntervalStudyResult:
    """turb3d snapshots: 64- vs. 128-entry queue over two stable phases."""
    workload = turb3d_snapshots(interval_instructions)
    # trim the workload to the requested snapshot span per phase
    from repro.workloads.phases import PhasedWorkload, PhaseSegment

    span = intervals_per_phase * interval_instructions
    workload = PhasedWorkload(
        name=workload.name,
        segments=tuple(
            PhaseSegment(s.ilp, span) for s in workload.segments
        ),
    )
    series = _interval_series(workload, (64, 128), seed, interval_instructions, engine)
    return IntervalStudyResult(workload="turb3d", series=series)


def figure13(
    regular: bool,
    interval_instructions: int = PAPER_INTERVAL_INSTRUCTIONS,
    seed: int = 13,
    *,
    engine: ExperimentEngine | None = None,
) -> IntervalStudyResult:
    """vortex snapshots: 16- vs. 64-entry queue.

    ``regular=True`` is panel (a) — alternation every ~15 intervals;
    ``regular=False`` is panel (b) — near-random variation.
    """
    if regular:
        workload = vortex_regular(interval_instructions, n_phases=8)
    else:
        workload = vortex_irregular(interval_instructions, n_phases=60, seed=seed + 1)
    series = _interval_series(workload, (16, 64), seed, interval_instructions, engine)
    name = "vortex-regular" if regular else "vortex-irregular"
    return IntervalStudyResult(workload=name, series=series)


@dataclass(frozen=True)
class PredictorStudyResult:
    """Interval-adaptive policy vs. its bounds on one workload."""

    workload: str
    static: dict[int, PolicyOutcome]
    adaptive: PolicyOutcome
    adaptive_ungated: PolicyOutcome
    oracle: PolicyOutcome

    @property
    def best_static_tpi_ns(self) -> float:
        """TPI of the best static configuration (process-level choice)."""
        return min(o.tpi_ns for o in self.static.values())

    @property
    def adaptive_gain_percent(self) -> float:
        """Percent TPI reduction of the gated policy vs. best static."""
        base = self.best_static_tpi_ns
        return (base - self.adaptive.tpi_ns) / base * 100.0


def cache_interval_study(
    phase_refs: int = 9000,
    n_phases: int = 8,
    boundaries: tuple[int, ...] = (2, 6),
    seed: int = 21,
) -> IntervalStudyResult:
    """Interval-level adaptivity for the *cache* boundary.

    Goes beyond the paper's Section 6 (which studied only the queue):
    a workload alternating between a small hot working set and a tiled
    32 KB one, evaluated per interval at two boundary positions.  The
    returned result plugs into :func:`predictor_study` unchanged.
    """
    from repro.cache.intervals import cache_interval_tpi_series
    from repro.workloads.phases import cache_alternating_workload

    workload = cache_alternating_workload(phase_refs=phase_refs, n_phases=n_phases)
    trace = workload.generate(seed)
    series = cache_interval_tpi_series(
        trace,
        load_store_fraction=workload.segments[0].memory.load_store_fraction,
        boundaries=boundaries,
    )
    return IntervalStudyResult(workload=workload.name, series=series)


def predictor_study(
    result: IntervalStudyResult,
    confidence_threshold: float = 0.75,
    history: int = 4,
) -> PredictorStudyResult:
    """Evaluate the Section 6 mechanism on one interval study.

    Compares: each static configuration; the pattern predictor with the
    confidence gate; the same predictor with the gate disabled
    (always-switch, threshold ~0); and the switching oracle.
    """
    series = result.series
    windows = tuple(sorted(series))
    static = {w: evaluate_policy(series, StaticPolicy(w)) for w in windows}

    def gated(threshold: float) -> PolicyOutcome:
        predictor = ConfigurationPredictor(
            configurations=windows,
            history=history,
            confidence_threshold=threshold,
        )
        policy = IntervalAdaptivePolicy(predictor, initial=windows[0])
        return evaluate_policy(series, policy)

    adaptive = gated(confidence_threshold)
    adaptive_ungated = gated(1e-9)
    oracle = evaluate_policy(series, OraclePolicy(result.best_sequence()))
    return PredictorStudyResult(
        workload=result.workload,
        static=static,
        adaptive=adaptive,
        adaptive_ungated=adaptive_ungated,
        oracle=oracle,
    )
