"""Figures 1 and 2: buffered vs. unbuffered wire delay.

Figure 1 plots cache address-bus delay against the number of subarrays
(2 KB subarrays in panel (a), 4 KB in panel (b)); Figure 2 plots
R10000-style integer-queue tag-bus delay against the number of entries.
Each has one unbuffered curve (feature-size independent) and one
buffered curve per feature size (0.25, 0.18, 0.12 micron).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.tech.cacti import cache_bus_length_mm
from repro.tech.palacharla import queue_bus_length_mm
from repro.tech.parameters import technology
from repro.tech.repeaters import buffered_wire_delay_ns
from repro.tech.wires import unbuffered_wire_delay_ns
from repro.units import PAPER_FEATURE_SIZES_UM


@dataclass(frozen=True)
class WireDelaySeries:
    """The data behind one wire-delay figure panel."""

    x_label: str
    x_values: tuple[int, ...]
    unbuffered_ns: tuple[float, ...]
    buffered_ns: dict[float, tuple[float, ...]]  # feature size -> series

    def crossover(self, feature_um: float) -> int | None:
        """Smallest x at which buffering beats the bare wire, if any."""
        buffered = self.buffered_ns[feature_um]
        for x, b, u in zip(self.x_values, buffered, self.unbuffered_ns):
            if b < u:
                return x
        return None

    def as_series_dict(self) -> dict[str, tuple[float, ...]]:
        """Named series for :func:`repro.experiments.reporting.format_series`."""
        out: dict[str, tuple[float, ...]] = {"Unbuffered": self.unbuffered_ns}
        for feature in sorted(self.buffered_ns, reverse=True):
            out[f"Buffers, {feature}u"] = self.buffered_ns[feature]
        return out


def _wire_series(
    x_label: str,
    x_values: Sequence[int],
    lengths_mm: Sequence[float],
    features: Sequence[float],
) -> WireDelaySeries:
    ref = technology(max(features))
    unbuffered = tuple(unbuffered_wire_delay_ns(length, ref) for length in lengths_mm)
    buffered = {
        f: tuple(buffered_wire_delay_ns(length, technology(f)) for length in lengths_mm)
        for f in features
    }
    return WireDelaySeries(
        x_label=x_label,
        x_values=tuple(x_values),
        unbuffered_ns=unbuffered,
        buffered_ns=buffered,
    )


def figure1(
    subarray_kb: int,
    n_arrays: Sequence[int] = tuple(range(4, 17)),
    features: Sequence[float] = PAPER_FEATURE_SIZES_UM,
) -> WireDelaySeries:
    """Cache address-bus wire delay vs. number of subarrays.

    ``subarray_kb=2`` is panel (a), ``subarray_kb=4`` is panel (b);
    data-bus delays are identical (same wire model).
    """
    lengths = [cache_bus_length_mm(n, subarray_kb * 1024) for n in n_arrays]
    return _wire_series("Number of Cache Arrays", n_arrays, lengths, features)


def figure2(
    entries: Sequence[int] = tuple(range(16, 65, 4)),
    features: Sequence[float] = PAPER_FEATURE_SIZES_UM,
) -> WireDelaySeries:
    """Integer-queue tag-bus wire delay vs. number of queue entries."""
    lengths = [queue_bus_length_mm(n) for n in entries]
    return _wire_series("Number of Instruction Queue Entries", entries, lengths, features)
