"""Figures 7, 8 and 9: the complexity-adaptive cache hierarchy study.

Methodology, following the paper's Section 5.1:

* each application contributes an address trace (first N D-cache
  references; the paper uses 100 M, we default to a calibrated 60 k
  with a warm-up prefix that plays the role the sheer length of the
  paper's traces plays — amortising compulsory misses of structures
  that do fit in the hierarchy);
* the two-level simulator is blocking and conflict-free;
* TPI and TPImiss come from :class:`repro.cache.tpi.CacheTpiModel`;
* the conventional configuration is the fixed boundary minimising
  suite-average TPI (the paper finds the 16 KB 4-way L1);
* the process-level adaptive configuration is each application's own
  TPI-minimising boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import PAPER_GEOMETRY, PAPER_MAX_L1_INCREMENTS, HierarchyConfig
from repro.cache.stackdist import DepthHistogram
from repro.cache.tpi import CacheTpiModel, TpiBreakdown
from repro.core.metrics import TpiComparison
from repro.engine.cells import (
    cache_tpi_cell,
    cached_histogram,
    tpi_breakdown_from_payload,
)
from repro.engine.engine import ExperimentEngine, default_engine
from repro.obs import trace as obs
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.suite import cache_study_profiles

#: Default measured trace length (references per application).
DEFAULT_N_REFS: int = 60_000
#: Default warm-up prefix (references discarded before measuring).
DEFAULT_WARMUP_REFS: int = 20_000


def histogram_for(
    profile: BenchmarkProfile,
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
) -> DepthHistogram:
    """Stack-depth histogram of one application's trace (memoised).

    One pass of the stack-distance engine evaluates every boundary
    position at once; the per-process memo in
    :mod:`repro.engine.cells` keeps suite-wide sweeps cheap.
    """
    return cached_histogram(profile, n_refs, warmup_refs)


def cache_tpi_table(
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
    tpi_model: CacheTpiModel | None = None,
    *,
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[int, TpiBreakdown]]:
    """Full TPI breakdowns: application -> boundary -> breakdown.

    The suite fans out one engine cell per application; pass ``engine``
    for parallelism/caching.  A custom ``tpi_model`` cannot be shipped
    to workers or content-addressed, so it forces the serial path.
    """
    boundaries = PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
    profiles = cache_study_profiles()
    if tpi_model is not None:
        return {
            profile.name: tpi_model.sweep_breakdowns(
                histogram_for(profile, n_refs, warmup_refs),
                profile.memory.load_store_fraction,
                boundaries,
            )
            for profile in profiles
        }
    eng = engine if engine is not None else default_engine()
    cells = [
        cache_tpi_cell(profile, n_refs, warmup_refs, boundaries)
        for profile in profiles
    ]
    payloads = eng.map(cells)
    return {
        profile.name: {
            int(k): tpi_breakdown_from_payload(row)
            for k, row in payload["breakdowns"].items()
        }
        for profile, payload in zip(profiles, payloads)
    }


def figure7(
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
    *,
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[str, dict[float, float]]]:
    """Average TPI vs. L1 size, fixed boundary.

    Returns ``{"integer"|"floating": {app: {l1_kb: tpi_ns}}}`` — panel
    (a) and (b) of the paper's Figure 7.
    """
    table = cache_tpi_table(n_refs, warmup_refs, engine=engine)
    panels: dict[str, dict[str, dict[float, float]]] = {"integer": {}, "floating": {}}
    for profile in cache_study_profiles():
        curve = {
            HierarchyConfig(PAPER_GEOMETRY, k).l1_kb: breakdown.tpi_ns
            for k, breakdown in table[profile.name].items()
        }
        panels[profile.domain][profile.name] = curve
    return panels


@dataclass(frozen=True)
class CacheStudyResult:
    """Everything Figures 8 and 9 plot, plus the selection metadata."""

    conventional_boundary: int
    best_boundaries: dict[str, int]
    tpi: TpiComparison
    tpi_miss: TpiComparison
    table: dict[str, dict[int, TpiBreakdown]] = field(repr=False)

    @property
    def conventional_l1_kb(self) -> float:
        """L1 size of the best conventional configuration."""
        return HierarchyConfig(PAPER_GEOMETRY, self.conventional_boundary).l1_kb


def _select_best_boundaries(
    table: dict[str, dict[int, TpiBreakdown]],
) -> dict[str, int]:
    """Pick each application's TPI-minimising boundary — through the
    Configuration Manager, so the decision process is observable.

    The manager plays its paper role (Figure 5): one candidate
    evaluation per boundary (``candidate`` spans), the argmin decision
    recorded per process, and the winning configuration applied to a
    live adaptive hierarchy (``reconfigure`` span, clock switch
    included).  Under the process-level scheme one application *is* one
    adaptation interval, so each app's selection runs inside an
    ``interval`` span.  With no tracer active all spans are no-ops and
    this is exactly an argmin over the table.
    """
    from repro.cache.adaptive import AdaptiveCacheHierarchy
    from repro.core.clock import DynamicClock
    from repro.core.manager import ConfigurationManager

    dcache = AdaptiveCacheHierarchy()
    manager = ConfigurationManager(
        clock=DynamicClock(adaptive_structures=(dcache,)), structures=(dcache,)
    )
    best: dict[str, int] = {}
    for i, app in enumerate(table):
        with obs.span("interval", level="interval", index=i, app=app) as sp:
            decision = manager.select_for_process(
                app, "dcache", lambda k, _app=app: table[_app][k].tpi_ns
            )
            manager.apply("dcache", decision.configuration, trigger="process_select")
            best[app] = decision.configuration
            sp.set(
                configuration=decision.configuration,
                tpi_ns=decision.predicted_tpi_ns,
            )
    return best


def figure8_9(
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
    tpi_model: CacheTpiModel | None = None,
    *,
    engine: ExperimentEngine | None = None,
) -> CacheStudyResult:
    """Best conventional vs. process-level adaptive, per app and average.

    Figure 8 is the ``tpi_miss`` comparison, Figure 9 the ``tpi`` one.
    """
    table = cache_tpi_table(n_refs, warmup_refs, tpi_model, engine=engine)
    boundaries = PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
    apps = list(table)

    def suite_average(k: int) -> float:
        return sum(table[app][k].tpi_ns for app in apps) / len(apps)

    conventional = min(boundaries, key=suite_average)
    best = _select_best_boundaries(table)
    tpi = TpiComparison(
        metric_name="Avg TPI (ns)",
        conventional={app: table[app][conventional].tpi_ns for app in apps},
        adaptive={app: table[app][best[app]].tpi_ns for app in apps},
    )
    tpi_miss = TpiComparison(
        metric_name="Avg Miss TPI (ns)",
        conventional={app: table[app][conventional].tpi_miss_ns for app in apps},
        adaptive={app: table[app][best[app]].tpi_miss_ns for app in apps},
    )
    return CacheStudyResult(
        conventional_boundary=conventional,
        best_boundaries=best,
        tpi=tpi,
        tpi_miss=tpi_miss,
        table=table,
    )
