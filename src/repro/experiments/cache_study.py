"""Figures 7, 8 and 9: the complexity-adaptive cache hierarchy study.

Methodology, following the paper's Section 5.1:

* each application contributes an address trace (first N D-cache
  references; the paper uses 100 M, we default to a calibrated 60 k
  with a warm-up prefix that plays the role the sheer length of the
  paper's traces plays — amortising compulsory misses of structures
  that do fit in the hierarchy);
* the two-level simulator is blocking and conflict-free;
* TPI and TPImiss come from :class:`repro.cache.tpi.CacheTpiModel`;
* the conventional configuration is the fixed boundary minimising
  suite-average TPI (the paper finds the 16 KB 4-way L1);
* the process-level adaptive configuration is each application's own
  TPI-minimising boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import PAPER_GEOMETRY, PAPER_MAX_L1_INCREMENTS, HierarchyConfig
from repro.cache.stackdist import DepthHistogram, StackDistanceEngine
from repro.cache.tpi import CacheTpiModel, TpiBreakdown
from repro.core.metrics import TpiComparison
from repro.workloads.address_trace import generate_address_trace
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.suite import cache_study_profiles

#: Default measured trace length (references per application).
DEFAULT_N_REFS: int = 60_000
#: Default warm-up prefix (references discarded before measuring).
DEFAULT_WARMUP_REFS: int = 20_000

_HISTOGRAM_CACHE: dict[tuple, DepthHistogram] = {}


def histogram_for(
    profile: BenchmarkProfile,
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
) -> DepthHistogram:
    """Stack-depth histogram of one application's trace (memoised).

    One pass of the stack-distance engine evaluates every boundary
    position at once; the cache keeps suite-wide sweeps cheap.
    """
    key = (profile.name, n_refs, warmup_refs, profile.seed)
    hit = _HISTOGRAM_CACHE.get(key)
    if hit is not None:
        return hit
    if profile.memory is None:
        raise ValueError(f"{profile.name} is not part of the cache study")
    addresses = generate_address_trace(profile.memory, n_refs + warmup_refs, profile.seed)
    engine = StackDistanceEngine(PAPER_GEOMETRY)
    if warmup_refs:
        engine.process(addresses[:warmup_refs])
    histogram = DepthHistogram.from_depths(
        PAPER_GEOMETRY, engine.process(addresses[warmup_refs:])
    )
    _HISTOGRAM_CACHE[key] = histogram
    return histogram


def cache_tpi_table(
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
    tpi_model: CacheTpiModel | None = None,
) -> dict[str, dict[int, TpiBreakdown]]:
    """Full TPI breakdowns: application -> boundary -> breakdown."""
    model = tpi_model if tpi_model is not None else CacheTpiModel()
    boundaries = PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
    table: dict[str, dict[int, TpiBreakdown]] = {}
    for profile in cache_study_profiles():
        histogram = histogram_for(profile, n_refs, warmup_refs)
        table[profile.name] = model.sweep(
            histogram, profile.memory.load_store_fraction, boundaries
        )
    return table


def figure7(
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
) -> dict[str, dict[str, dict[float, float]]]:
    """Average TPI vs. L1 size, fixed boundary.

    Returns ``{"integer"|"floating": {app: {l1_kb: tpi_ns}}}`` — panel
    (a) and (b) of the paper's Figure 7.
    """
    table = cache_tpi_table(n_refs, warmup_refs)
    panels: dict[str, dict[str, dict[float, float]]] = {"integer": {}, "floating": {}}
    for profile in cache_study_profiles():
        curve = {
            HierarchyConfig(PAPER_GEOMETRY, k).l1_kb: breakdown.tpi_ns
            for k, breakdown in table[profile.name].items()
        }
        panels[profile.domain][profile.name] = curve
    return panels


@dataclass(frozen=True)
class CacheStudyResult:
    """Everything Figures 8 and 9 plot, plus the selection metadata."""

    conventional_boundary: int
    best_boundaries: dict[str, int]
    tpi: TpiComparison
    tpi_miss: TpiComparison
    table: dict[str, dict[int, TpiBreakdown]] = field(repr=False)

    @property
    def conventional_l1_kb(self) -> float:
        """L1 size of the best conventional configuration."""
        return HierarchyConfig(PAPER_GEOMETRY, self.conventional_boundary).l1_kb


def figure8_9(
    n_refs: int = DEFAULT_N_REFS,
    warmup_refs: int = DEFAULT_WARMUP_REFS,
    tpi_model: CacheTpiModel | None = None,
) -> CacheStudyResult:
    """Best conventional vs. process-level adaptive, per app and average.

    Figure 8 is the ``tpi_miss`` comparison, Figure 9 the ``tpi`` one.
    """
    table = cache_tpi_table(n_refs, warmup_refs, tpi_model)
    boundaries = PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
    apps = list(table)

    def suite_average(k: int) -> float:
        return sum(table[app][k].tpi_ns for app in apps) / len(apps)

    conventional = min(boundaries, key=suite_average)
    best = {
        app: min(boundaries, key=lambda k: table[app][k].tpi_ns) for app in apps
    }
    tpi = TpiComparison(
        metric_name="Avg TPI (ns)",
        conventional={app: table[app][conventional].tpi_ns for app in apps},
        adaptive={app: table[app][best[app]].tpi_ns for app in apps},
    )
    tpi_miss = TpiComparison(
        metric_name="Avg Miss TPI (ns)",
        conventional={app: table[app][conventional].tpi_miss_ns for app in apps},
        adaptive={app: table[app][best[app]].tpi_miss_ns for app in apps},
    )
    return CacheStudyResult(
        conventional_boundary=conventional,
        best_boundaries=best,
        tpi=tpi,
        tpi_miss=tpi_miss,
        table=table,
    )
