"""Ablations of the design choices the paper calls out.

Four studies, each isolating one decision:

* :func:`increment_granularity_ablation` — the paper's chosen 8 KB
  two-way set-associative, two-way-banked increment against "a
  competing direct-mapped two-way banked 4KB increment design"
  (Section 5.2.1): finer configuration increments, but longer global
  busses per kilobyte of L1.
* :func:`latency_mode_ablation` — Section 3.1's alternative of keeping
  the fastest clock and stretching the L1 *latency in cycles* instead
  of slowing the clock, which penalises only loads and stores.
* :func:`flush_reconfiguration_ablation` — what exclusion + constant
  index/tag mapping buy: a naive reconfigurable cache that invalidates
  on every boundary move versus the CAP's data-preserving move.
* :func:`confidence_threshold_sweep` and
  :func:`switch_cost_sensitivity` — how the Section 6 interval policy
  responds to its two key knobs on the irregular (Figure 13b) and
  regular (Figure 13a) workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import AccessLevel, TwoLevelExclusiveCache, HierarchyConfig
from repro.cache.timing import CacheTimingModel, LatencyMode
from repro.core.policies import IntervalAdaptivePolicy, PolicyOutcome, evaluate_policy
from repro.core.predictor import ConfigurationPredictor
from repro.engine.cells import cache_tpi_cell
from repro.engine.engine import ExperimentEngine, default_engine
from repro.experiments.cache_study import DEFAULT_N_REFS, DEFAULT_WARMUP_REFS
from repro.experiments.interval_study import IntervalStudyResult
from repro.tech.cacti import CacheIncrementTiming
from repro.workloads.address_trace import generate_address_trace
from repro.workloads.suite import cache_study_profiles


def fine_grained_geometry() -> CacheGeometry:
    """The competing design: 32 x 4 KB direct-mapped two-way-banked
    increments (same 128 KB total, same 128 sets)."""
    return CacheGeometry(
        n_increments=32,
        ways_per_increment=1,
        block_bytes=32,
        increment_bytes=4096,
        increment_timing=CacheIncrementTiming(
            bank_bytes=2048, n_banks=2, associativity=1, block_bytes=32
        ),
    )


@dataclass(frozen=True)
class GranularityAblation:
    """Suite-level comparison of the two increment designs."""

    paper_suite_tpi_ns: float
    fine_suite_tpi_ns: float
    paper_cycle_at_16kb: float
    fine_cycle_at_16kb: float
    paper_adaptive_tpi_ns: float
    fine_adaptive_tpi_ns: float

    @property
    def paper_design_wins(self) -> bool:
        """The paper's stated reason for choosing 8 KB increments."""
        return self.paper_adaptive_tpi_ns <= self.fine_adaptive_tpi_ns


def _suite_tpis(
    geometry: CacheGeometry,
    max_l1_bytes: int,
    engine: ExperimentEngine | None = None,
) -> tuple[float, float]:
    """(best-conventional suite TPI, per-app adaptive suite TPI)."""
    boundaries = tuple(
        k
        for k in geometry.boundary_positions()
        if k * geometry.increment_bytes <= max_l1_bytes
    )
    eng = engine if engine is not None else default_engine()
    profiles = cache_study_profiles()
    payloads = eng.map(
        [
            cache_tpi_cell(
                profile,
                DEFAULT_N_REFS,
                DEFAULT_WARMUP_REFS,
                boundaries,
                geometry=geometry,
            )
            for profile in profiles
        ]
    )
    per_app = {
        profile.name: {
            int(k): row["tpi_ns"] for k, row in payload["breakdowns"].items()
        }
        for profile, payload in zip(profiles, payloads)
    }
    conventional = min(
        boundaries,
        key=lambda k: sum(rows[k] for rows in per_app.values()),
    )
    conv_tpi = sum(rows[conventional] for rows in per_app.values()) / len(per_app)
    adaptive_tpi = sum(min(rows.values()) for rows in per_app.values()) / len(per_app)
    return conv_tpi, adaptive_tpi


def increment_granularity_ablation(
    *, engine: ExperimentEngine | None = None
) -> GranularityAblation:
    """Compare the paper's 8 KB increments with 4 KB increments."""
    from repro.cache.config import PAPER_GEOMETRY

    paper_conv, paper_adapt = _suite_tpis(
        PAPER_GEOMETRY, max_l1_bytes=64 * 1024, engine=engine
    )
    fine = fine_grained_geometry()
    fine_conv, fine_adapt = _suite_tpis(fine, max_l1_bytes=64 * 1024, engine=engine)
    paper_timing = CacheTimingModel(geometry=PAPER_GEOMETRY)
    fine_timing = CacheTimingModel(geometry=fine)
    return GranularityAblation(
        paper_suite_tpi_ns=paper_conv,
        fine_suite_tpi_ns=fine_conv,
        paper_cycle_at_16kb=paper_timing.cycle_time_ns(2),
        fine_cycle_at_16kb=fine_timing.cycle_time_ns(4),
        paper_adaptive_tpi_ns=paper_adapt,
        fine_adaptive_tpi_ns=fine_adapt,
    )


# ---------------------------------------------------------------------------
# Latency mode (Section 3.1)
# ---------------------------------------------------------------------------

#: IPC lost per extra L1 latency cycle per unit of load/store density:
#: each extra cycle of load-use latency stalls dependent instructions;
#: with ~one dependent instruction per load and a 4-wide pipeline the
#: first-order penalty is about 15% of the load's issue slot.
LOAD_USE_SENSITIVITY: float = 0.15


@dataclass(frozen=True)
class LatencyModeAblation:
    """Per-application best TPI under each Section 3.1 option."""

    clock_mode_tpi: dict[str, float]
    latency_mode_tpi: dict[str, float]

    def winners(self) -> dict[str, str]:
        """Which option wins per application."""
        return {
            app: ("latency" if self.latency_mode_tpi[app] < self.clock_mode_tpi[app]
                  else "clock")
            for app in self.clock_mode_tpi
        }


def latency_mode_ablation(
    *, engine: ExperimentEngine | None = None
) -> LatencyModeAblation:
    """Best-configuration TPI per app: vary the clock vs. the latency.

    In latency mode the clock stays at the one-increment rate and a
    bigger L1 costs extra hit-latency cycles, which only loads/stores
    pay.  The base IPC is degraded by the load-use penalty of the extra
    cycles; everything else (L2/miss stalls) is evaluated identically.
    """
    boundaries = tuple(range(1, 9))
    eng = engine if engine is not None else default_engine()
    profiles = cache_study_profiles()
    clock_payloads = eng.map(
        [
            cache_tpi_cell(
                profile,
                DEFAULT_N_REFS,
                DEFAULT_WARMUP_REFS,
                boundaries,
                mode=LatencyMode.CLOCK,
            )
            for profile in profiles
        ]
    )
    lat_payloads = eng.map(
        [
            cache_tpi_cell(
                profile,
                DEFAULT_N_REFS,
                DEFAULT_WARMUP_REFS,
                boundaries,
                mode=LatencyMode.LATENCY,
            )
            for profile in profiles
        ]
    )

    clock_tpi: dict[str, float] = {}
    latency_tpi: dict[str, float] = {}
    for profile, clock_payload, lat_payload in zip(
        profiles, clock_payloads, lat_payloads
    ):
        ls = profile.memory.load_store_fraction
        clock_tpi[profile.name] = min(
            row["tpi_ns"] for row in clock_payload["breakdowns"].values()
        )
        rows = lat_payload["breakdowns"]
        base_latency = rows[str(boundaries[0])]["l1_latency_cycles"]
        best_lat = math.inf
        for k in boundaries:
            row = rows[str(k)]
            extra = row["l1_latency_cycles"] - base_latency
            ipc_scale = 1.0 + LOAD_USE_SENSITIVITY * ls * extra
            tpi_base = row["tpi_ns"] - row["tpi_miss_ns"]
            adjusted = tpi_base * ipc_scale + row["tpi_miss_ns"]
            best_lat = min(best_lat, adjusted)
        latency_tpi[profile.name] = best_lat
    return LatencyModeAblation(clock_mode_tpi=clock_tpi, latency_mode_tpi=latency_tpi)


# ---------------------------------------------------------------------------
# Flush-on-reconfigure (what exclusion buys)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlushAblation:
    """Extra misses caused by flushing on one mid-run reconfiguration."""

    app: str
    preserved_misses: int
    flushed_misses: int
    extra_miss_ns: float

    @property
    def extra_misses(self) -> int:
        """Misses attributable to the flush."""
        return self.flushed_misses - self.preserved_misses


def flush_reconfiguration_ablation(
    app: str = "stereo",
    n_refs: int = 30_000,
    boundary_change: tuple[int, int] = (2, 6),
) -> FlushAblation:
    """Reconfigure mid-trace with and without invalidating the cache."""
    from repro.cache.config import PAPER_GEOMETRY
    from repro.workloads.suite import get_profile

    profile = get_profile(app)
    addresses = generate_address_trace(profile.memory, n_refs, profile.seed)
    half = n_refs // 2
    before, after = boundary_change

    def run(flush: bool) -> int:
        cache = TwoLevelExclusiveCache(HierarchyConfig(PAPER_GEOMETRY, before))
        misses = int(np.sum(cache.run(addresses[:half]) == AccessLevel.MISS))
        cache.move_boundary(HierarchyConfig(PAPER_GEOMETRY, after))
        if flush:
            cache.flush()
        misses += int(np.sum(cache.run(addresses[half:]) == AccessLevel.MISS))
        return misses

    preserved = run(flush=False)
    flushed = run(flush=True)
    timing = CacheTimingModel()
    return FlushAblation(
        app=app,
        preserved_misses=preserved,
        flushed_misses=flushed,
        extra_miss_ns=(flushed - preserved) * timing.miss_latency_ns(),
    )


# ---------------------------------------------------------------------------
# Section 6 policy sensitivity
# ---------------------------------------------------------------------------


def _gated_outcome(
    result: IntervalStudyResult,
    threshold: float,
    switch_pause_cycles: int = 30,
) -> PolicyOutcome:
    windows = tuple(sorted(result.series))
    predictor = ConfigurationPredictor(
        configurations=windows, history=4, confidence_threshold=threshold
    )
    policy = IntervalAdaptivePolicy(predictor, initial=windows[0])
    return evaluate_policy(
        result.series, policy, switch_pause_cycles=switch_pause_cycles
    )


def confidence_threshold_sweep(
    result: IntervalStudyResult,
    thresholds: tuple[float, ...] = (0.3, 0.5, 0.65, 0.75, 0.85, 0.95),
) -> dict[float, PolicyOutcome]:
    """Gated-policy outcome at each confidence threshold."""
    return {t: _gated_outcome(result, t) for t in thresholds}


def switch_cost_sensitivity(
    result: IntervalStudyResult,
    pauses: tuple[int, ...] = (0, 30, 100, 300, 1000),
    threshold: float = 0.75,
) -> dict[int, PolicyOutcome]:
    """Gated-policy outcome as the clock-switch pause grows."""
    return {
        p: _gated_outcome(result, threshold, switch_pause_cycles=p) for p in pauses
    }
