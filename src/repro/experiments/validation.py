"""Validation: the analytic composition versus the integrated simulator.

The paper evaluates the cache with a fixed-IPC pipeline that stalls for
every L1 miss (blocking), and the queue with perfect caches, adding the
two effects analytically.  The integrated simulation replays the same
instruction stream through the out-of-order machine with loads resolved
by the real cache hierarchy, so independent misses can overlap under
the issue window.

Two facts emerge:

* the analytic model is **conservative**: overlap means the integrated
  TPI never exceeds the analytic TPI, and is usually far lower;
* for clock-sensitive applications the two agree on the winning
  boundary, but for capacity-hungry ones the out-of-order window hides
  so much L2-hit latency that the optimum shifts toward the *faster
  clock* — the machine's latency tolerance is itself part of the
  IPC/clock-rate tradeoff.  (The paper's blocking-pipeline cache study
  therefore gives an upper bound on how much capacity is worth;
  Section 5.1 acknowledges exactly this kind of idealisation.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.timing import CacheTimingModel
from repro.errors import WorkloadError
from repro.ooo.machine import MachineConfig, OutOfOrderMachine
from repro.ooo.memory import CacheMemorySystem
from repro.ooo.timing import QueueTimingModel
from repro.workloads.instruction_trace import (
    InstructionTrace,
    attach_memory_trace,
    generate_instruction_trace,
)
from repro.workloads.suite import get_profile


@dataclass(frozen=True)
class ValidationPoint:
    """One (application, boundary, window) comparison."""

    app: str
    l1_increments: int
    window: int
    analytic_tpi_ns: float
    integrated_tpi_ns: float

    @property
    def overlap_recovery_percent(self) -> float:
        """How much TPI the integrated machine recovers by overlapping
        misses that the analytic (blocking) model serialises."""
        return (
            (self.analytic_tpi_ns - self.integrated_tpi_ns)
            / self.analytic_tpi_ns
            * 100.0
        )


def integrated_vs_analytic(
    app: str,
    l1_increments: int,
    window: int = 64,
    n_instructions: int = 50_000,
) -> ValidationPoint:
    """Compare the two methodologies on one configuration point."""
    profile = get_profile(app)
    if profile.memory is None:
        raise WorkloadError(f"{app} has no memory profile")

    # Generate a double-length stream and measure its second half: the
    # first half warms the cache *in stream order*, so loop components
    # are exactly as warm as a long-running application would have them
    # (neither cold-start inflated nor artificially preloaded).
    full = attach_memory_trace(
        generate_instruction_trace(profile.ilp, 2 * n_instructions, profile.seed),
        profile.memory,
        profile.seed + 17,
    )
    warm_addresses = [
        int(a) for a in full.load_address[:n_instructions] if a >= 0
    ]
    trace = full.slice(n_instructions, 2 * n_instructions)
    base = InstructionTrace(
        dep1=trace.dep1, dep2=trace.dep2, latency=trace.latency
    )

    cache_timing = CacheTimingModel()
    queue_timing = QueueTimingModel()
    cycle = max(
        cache_timing.cycle_time_ns(l1_increments),
        queue_timing.cycle_time_ns(window),
    )

    # --- integrated: machine + live cache hierarchy -------------------
    memory = CacheMemorySystem(l1_increments, timing=cache_timing)
    memory.warm(warm_addresses)
    memory.reset_counts()
    machine = OutOfOrderMachine(MachineConfig(window=window))
    integrated = machine.run(trace, memory_system=memory)
    integrated_tpi = cycle / integrated.ipc

    # --- analytic: perfect-cache machine + additive blocking stalls ---
    perfect = machine.run(base)
    counts = memory.level_counts
    from repro.cache.hierarchy import AccessLevel

    l2_cycles = math.ceil(cache_timing.l2_access_time_ns() / cycle)
    miss_cycles = math.ceil(cache_timing.miss_latency_ns() / cycle)
    stall_cycles = (
        counts[AccessLevel.L2] * l2_cycles + counts[AccessLevel.MISS] * miss_cycles
    )
    analytic_tpi = cycle * (1.0 / perfect.ipc + stall_cycles / n_instructions)

    return ValidationPoint(
        app=app,
        l1_increments=l1_increments,
        window=window,
        analytic_tpi_ns=analytic_tpi,
        integrated_tpi_ns=integrated_tpi,
    )


def validation_sweep(
    apps: tuple[str, ...] = ("perl", "gcc", "stereo", "swim", "applu"),
    boundaries: tuple[int, ...] = (1, 2, 4, 6, 8),
    window: int = 64,
    n_instructions: int = 50_000,
) -> dict[str, list[ValidationPoint]]:
    """Run the comparison across several apps and boundaries."""
    return {
        app: [
            integrated_vs_analytic(app, k, window, n_instructions)
            for k in boundaries
        ]
        for app in apps
    }
