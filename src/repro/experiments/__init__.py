"""Experiment harnesses: one per figure of the paper's evaluation.

Every module regenerates the data behind one or more figures:

* :mod:`repro.experiments.wire_delay` — Figures 1(a), 1(b) and 2.
* :mod:`repro.experiments.cache_study` — Figures 7, 8 and 9.
* :mod:`repro.experiments.queue_study` — Figures 10 and 11.
* :mod:`repro.experiments.interval_study` — Figures 12 and 13, plus the
  Section 6 predictor evaluation.
* :mod:`repro.experiments.reporting` — text-table rendering shared by
  the benchmark harnesses.

Absolute numbers are not expected to match the paper (the substrate is
a calibrated simulator, not the authors' testbed); the *shapes* — who
wins, by roughly what factor, where crossovers fall — are asserted by
the test suite and recorded in EXPERIMENTS.md.
"""

from repro.experiments.wire_delay import WireDelaySeries, figure1, figure2
from repro.experiments.cache_study import (
    CacheStudyResult,
    cache_tpi_table,
    figure7,
    figure8_9,
)
from repro.experiments.queue_study import (
    QueueStudyResult,
    figure10,
    figure11,
    queue_tpi_table,
)
from repro.experiments.interval_study import (
    IntervalStudyResult,
    PredictorStudyResult,
    figure12,
    figure13,
    predictor_study,
)

__all__ = [
    "WireDelaySeries",
    "figure1",
    "figure2",
    "figure7",
    "figure8_9",
    "cache_tpi_table",
    "CacheStudyResult",
    "figure10",
    "figure11",
    "queue_tpi_table",
    "QueueStudyResult",
    "figure12",
    "figure13",
    "IntervalStudyResult",
    "predictor_study",
    "PredictorStudyResult",
]
