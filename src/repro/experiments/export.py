"""CSV export of every regenerable figure.

The library never plots (no plotting dependency), but every figure's
data can be exported as CSV for external tooling:

>>> from repro.experiments.export import export_figure
>>> path = export_figure("2", "/tmp/figs")        # doctest: +SKIP

Each file has one header row; series figures are wide (one column per
curve), comparison figures are long (one row per application).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

from repro.errors import ReproError


def _write(path: Path, header: list[str], rows: list[list]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _export_wire(figure_id: str, out: Path) -> Path:
    from repro.experiments.wire_delay import figure1, figure2

    if figure_id == "2":
        series = figure2()
    else:
        series = figure1(subarray_kb=2 if figure_id == "1a" else 4)
    names = list(series.as_series_dict())
    data = series.as_series_dict()
    rows = [
        [x] + [data[name][i] for name in names]
        for i, x in enumerate(series.x_values)
    ]
    return _write(out / f"figure{figure_id}.csv", [series.x_label] + names, rows)


def _export_panels(figure_id: str, out: Path) -> Path:
    from repro.experiments.cache_study import figure7
    from repro.experiments.queue_study import figure10

    panels = figure7() if figure_id == "7" else figure10()
    x_label = "l1_kb" if figure_id == "7" else "entries"
    rows = []
    for domain in ("integer", "floating"):
        for app, curve in panels[domain].items():
            for x, tpi in sorted(curve.items()):
                rows.append([domain, app, x, tpi])
    return _write(
        out / f"figure{figure_id}.csv", ["domain", "app", x_label, "tpi_ns"], rows
    )


def _export_cache_comparison(figure_id: str, out: Path) -> Path:
    from repro.experiments.cache_study import figure8_9

    study = figure8_9()
    comparison = study.tpi_miss if figure_id == "8" else study.tpi
    rows = [
        [app, 8 * study.best_boundaries[app], comparison.conventional[app],
         comparison.adaptive[app]]
        for app in comparison.applications
    ]
    return _write(
        out / f"figure{figure_id}.csv",
        ["app", "adaptive_l1_kb", "conventional_ns", "adaptive_ns"],
        rows,
    )


def _export_queue_comparison(out: Path) -> Path:
    from repro.experiments.queue_study import figure11

    study = figure11()
    rows = [
        [app, study.best_sizes[app], study.tpi.conventional[app],
         study.tpi.adaptive[app]]
        for app in study.tpi.applications
    ]
    return _write(
        out / "figure11.csv",
        ["app", "adaptive_entries", "conventional_ns", "adaptive_ns"],
        rows,
    )


def _export_intervals(figure_id: str, out: Path) -> Path:
    from repro.experiments.interval_study import figure12, figure13

    if figure_id == "12":
        result = figure12()
    else:
        result = figure13(regular=figure_id == "13a")
    windows = result.windows
    rows = [
        [i] + [float(result.series[w].tpi_ns[i]) for w in windows]
        for i in range(len(result.series[windows[0]]))
    ]
    return _write(
        out / f"figure{figure_id}.csv",
        ["interval"] + [f"tpi_ns_{w}_entries" for w in windows],
        rows,
    )


_EXPORTERS: dict[str, Callable[[str, Path], Path]] = {
    "1a": _export_wire,
    "1b": _export_wire,
    "2": _export_wire,
    "7": _export_panels,
    "8": _export_cache_comparison,
    "9": _export_cache_comparison,
    "10": _export_panels,
    "11": lambda _fid, out: _export_queue_comparison(out),
    "12": _export_intervals,
    "13a": _export_intervals,
    "13b": _export_intervals,
}


def exportable_figures() -> tuple[str, ...]:
    """Figure ids :func:`export_figure` accepts."""
    return tuple(sorted(_EXPORTERS))


def export_figure(figure_id: str, out_dir: str | Path) -> Path:
    """Write one figure's data as CSV; return the file path."""
    try:
        exporter = _EXPORTERS[figure_id]
    except KeyError:
        raise ReproError(
            f"unknown figure {figure_id!r}; exportable: {exportable_figures()}"
        ) from None
    return exporter(figure_id, Path(out_dir))


def export_all(out_dir: str | Path) -> list[Path]:
    """Export every figure; return the written paths."""
    return [export_figure(fid, out_dir) for fid in exportable_figures()]
