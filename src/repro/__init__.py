"""repro — Complexity-Adaptive Processors.

A full reproduction of David H. Albonesi, *"Dynamic IPC/Clock Rate
Optimization"* (ISCA 1998): complexity-adaptive hardware structures
built on repeater-isolated increments, a dynamic clock that lets every
configuration run at its full clock-rate potential, and configuration
management that picks the TPI-minimising configuration per application
(process-level) or per interval (Section 6).

Quick tour
----------
>>> from repro import CapProcessor
>>> cpu = CapProcessor()
>>> _ = cpu.iqueue.reconfigure(16)
>>> _ = cpu.dcache.reconfigure(1)
>>> cpu.cycle_time_ns() < 0.6            # small structures, fast clock
True

Subpackages
-----------
:mod:`repro.tech`
    Wire, repeater (Bakoglu), cache (CACTI-style) and issue-queue
    (Palacharla) timing models.
:mod:`repro.cache`
    The movable-boundary two-level exclusive D-cache hierarchy.
:mod:`repro.ooo`
    The 8-way out-of-order machine with a resizable issue queue.
:mod:`repro.workloads`
    Calibrated synthetic stand-ins for the paper's SPEC95/CMU/NAS
    trace suite.
:mod:`repro.core`
    Dynamic clock, configuration manager, policies, predictor, power.
:mod:`repro.experiments`
    One harness per figure of the paper's evaluation.
"""

from repro.core.processor import CapProcessor
from repro.core.clock import DynamicClock
from repro.core.manager import ConfigurationManager
from repro.core.metrics import StructureSweep, SweepResult
from repro.core.structure import (
    ComplexityAdaptiveStructure,
    FixedStructure,
    ReconfigurationCost,
    StructureRunResult,
)
from repro.cache.adaptive import AdaptiveCacheHierarchy
from repro.ooo.adaptive import AdaptiveInstructionQueue
from repro.tlb.adaptive import AdaptiveTlb
from repro.branch.adaptive import AdaptiveBranchPredictor
from repro.engine import ExperimentEngine, default_engine

__version__ = "1.1.0"

__all__ = [
    "CapProcessor",
    "DynamicClock",
    "ConfigurationManager",
    "ComplexityAdaptiveStructure",
    "FixedStructure",
    "ReconfigurationCost",
    "StructureRunResult",
    "StructureSweep",
    "SweepResult",
    "AdaptiveCacheHierarchy",
    "AdaptiveInstructionQueue",
    "AdaptiveTlb",
    "AdaptiveBranchPredictor",
    "ExperimentEngine",
    "default_engine",
    "__version__",
]
