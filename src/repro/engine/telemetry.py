"""Structured run telemetry for the experiment engine.

Every engine run appends JSON-lines events to a user-supplied log file:

* one ``run_start`` event (job count, cell count, cache setup),
* one ``cell`` event per sweep cell, in submission order, recording the
  cell's kind, cache key, whether it was served from cache or computed,
  and its wall time (compute time in the worker for computed cells,
  load time for cache hits), and
* one ``run_end`` event with the aggregate counters: cache hits and
  misses, elapsed wall time, total busy time across workers, and the
  implied worker utilization (``busy / (elapsed * jobs)``).

The exact field set of each event is declared in :data:`EVENT_SCHEMA`;
:func:`validate_events` enforces it, and the engine's own tests validate
every log they produce against it.  :func:`summarize` renders a log
human-readable.

This format predates the decision tracer (:mod:`repro.obs.trace`) and
is kept as a compatibility layer: the engine still honours the
``--telemetry`` knob, and ``repro obs summarize`` accepts these logs
alongside trace files.  New instrumentation should use the tracer —
the engine itself now additionally emits ``engine``-level spans with
one ``engine.cell`` event per cell whenever a tracer is active.
"""

from __future__ import annotations

import json
import time
import uuid
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import EngineError, RemovedApiError

#: Required fields of each telemetry event type.
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    "run_start": (
        "event",
        "run_id",
        "ts",
        "jobs",
        "n_cells",
        "cache_enabled",
        "cache_dir",
    ),
    "cell": (
        "event",
        "run_id",
        "ts",
        "index",
        "kind",
        "key",
        "source",
        "wall_s",
    ),
    "run_end": (
        "event",
        "run_id",
        "ts",
        "jobs",
        "n_cells",
        "cache_hits",
        "cache_misses",
        "elapsed_s",
        "busy_s",
        "worker_utilization",
    ),
}

#: Legal values of a ``cell`` event's ``source`` field.  ``journal``
#: marks a cell served from a checkpoint journal on ``--resume``.
CELL_SOURCES: tuple[str, ...] = ("cache", "computed", "journal")


def new_run_id() -> str:
    """A short unique identifier tying one run's events together."""
    return uuid.uuid4().hex[:12]


class TelemetryLog:
    """Append-only JSONL event writer (no-op without a path)."""

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None

    @property
    def enabled(self) -> bool:
        """Whether events are actually persisted."""
        return self.path is not None

    def emit(self, event: str, **fields: Any) -> dict:
        """Validate and append one event; returns the event dict."""
        record: dict[str, Any] = {"event": event, "ts": time.time(), **fields}
        validate_event(record)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record


def validate_event(record: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.EngineError` on a malformed event."""
    event = record.get("event")
    if event not in EVENT_SCHEMA:
        raise EngineError(
            f"unknown telemetry event {event!r}; known: {sorted(EVENT_SCHEMA)}"
        )
    missing = [f for f in EVENT_SCHEMA[event] if f not in record]
    if missing:
        raise EngineError(f"telemetry event {event!r} is missing fields {missing}")
    if event == "cell" and record["source"] not in CELL_SOURCES:
        raise EngineError(
            f"cell event source must be one of {CELL_SOURCES}, "
            f"got {record['source']!r}"
        )


def validate_events(events: Iterable[Mapping[str, Any]]) -> None:
    """Validate an event stream: per-event schema plus run bracketing."""
    events = list(events)
    for record in events:
        validate_event(record)
    run_ids = {r["run_id"] for r in events}
    for run_id in run_ids:
        run = [r for r in events if r["run_id"] == run_id]
        kinds = [r["event"] for r in run]
        if kinds.count("run_start") != 1 or kinds.count("run_end") != 1:
            raise EngineError(
                f"run {run_id} must have exactly one run_start and one run_end"
            )
        end = next(r for r in run if r["event"] == "run_end")
        n_cell_events = sum(1 for k in kinds if k == "cell")
        if n_cell_events != end["n_cells"]:
            raise EngineError(
                f"run {run_id} logged {n_cell_events} cell events "
                f"but run_end claims {end['n_cells']}"
            )
        if end["cache_hits"] + end["cache_misses"] != end["n_cells"]:
            raise EngineError(
                f"run {run_id}: hits + misses must equal the cell count"
            )


def read_events(path: str | Path) -> list[dict]:
    """Parse a telemetry JSONL file."""
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise EngineError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from exc
    return events


def summarize(path: str | Path) -> str:
    """Removed digest shim; the renderer moved to :mod:`repro.obs`.

    .. deprecated:: 1.1
    .. versionremoved:: 1.2
        The deprecation cycle is complete.  Use ``repro obs summarize``
        or :func:`repro.obs.summarize.summarize_path`, which renders
        both the tracer's span/event files and these telemetry logs.
    """
    raise RemovedApiError(
        "repro.engine.telemetry.summarize was removed after its deprecation "
        "cycle; use `repro obs summarize` "
        "(repro.obs.summarize.summarize_path) instead"
    )
