"""Unified structure sweeps: one protocol over four structures.

Historically each structure grew its own copy-pasted sweep API
(``CacheTpiModel.sweep``, ``TlbTpiModel.sweep``, ``BranchTpiModel.sweep``
and ``queue_study.sweep_for``), each with a different workload argument
and a different breakdown type.  The classes here implement the shared
:class:`repro.core.metrics.StructureSweep` protocol instead: every
structure maps a :class:`~repro.workloads.profiles.BenchmarkProfile` to
``{configuration: SweepResult}`` with the same four fields, so the
experiment engine — and anything else comparing structures — can drive
them generically.

All four delegate to engine sweep cells, so a sweep is parallelisable
and cacheable by construction: pass an :class:`ExperimentEngine` to get
fan-out and the content-addressed cache, or none for inline evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.predictors import PredictorKind
from repro.branch.timing import BranchTimingModel
from repro.cache.config import PAPER_GEOMETRY, PAPER_MAX_L1_INCREMENTS
from repro.core.metrics import SweepResult, best_sweep_result
from repro.engine.cells import (
    SweepCell,
    branch_tpi_cell,
    cache_tpi_cell,
    queue_tpi_cell,
    tlb_tpi_cell,
)
from repro.engine.engine import ExperimentEngine, default_engine
from repro.ooo.timing import PAPER_QUEUE_SIZES, QueueTimingModel
from repro.tlb.timing import TlbTimingModel
from repro.workloads.profiles import BenchmarkProfile

#: Default cache-study trace sizing (mirrors the Figure 7-9 harness).
CACHE_SWEEP_N_REFS: int = 60_000
CACHE_SWEEP_WARMUP_REFS: int = 20_000
#: Default queue-study trace sizing (mirrors the Figure 10/11 harness).
QUEUE_SWEEP_N_INSTRUCTIONS: int = 16_000
#: Default TLB-study trace sizing (mirrors the extension study).
TLB_SWEEP_N_REFS: int = 30_000
TLB_SWEEP_WARMUP_REFS: int = 10_000
#: Default branch-study trace sizing (mirrors the extension study).
BRANCH_SWEEP_N_BRANCHES: int = 16_000


def _engine(engine: ExperimentEngine | None) -> ExperimentEngine:
    return engine if engine is not None else default_engine()


@dataclass(frozen=True)
class CacheStructureSweep:
    """L1/L2 boundary sweep of the movable-boundary cache hierarchy."""

    structure: str = "dcache"
    n_refs: int = CACHE_SWEEP_N_REFS
    warmup_refs: int = CACHE_SWEEP_WARMUP_REFS
    boundaries: tuple[int, ...] = field(
        default_factory=lambda: PAPER_GEOMETRY.boundary_positions(
            PAPER_MAX_L1_INCREMENTS
        )
    )

    def configurations(self) -> tuple[int, ...]:
        """Boundary positions (L1 increments), fastest first."""
        return tuple(self.boundaries)

    def cell(self, profile: BenchmarkProfile) -> "SweepCell":
        """The engine cell evaluating this sweep for one application."""
        return cache_tpi_cell(profile, self.n_refs, self.warmup_refs, self.boundaries)

    def results_from_payload(self, payload: dict) -> dict[int, SweepResult]:
        """Assemble :meth:`cell`'s payload into unified sweep results."""
        return {
            int(k): SweepResult(
                config=int(k),
                tpi_ns=row["tpi_ns"],
                ipc=row["cycle_time_ns"] / row["tpi_ns"],
                cycle_time_ns=row["cycle_time_ns"],
            )
            for k, row in payload["breakdowns"].items()
        }

    def sweep(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> dict[int, SweepResult]:
        """TPI of one application at every boundary position."""
        return self.results_from_payload(
            _engine(engine).run_cell(self.cell(profile))
        )

    def best(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> SweepResult:
        """The TPI-minimising boundary for one application."""
        return best_sweep_result(self.sweep(profile, engine=engine))


@dataclass(frozen=True)
class QueueStructureSweep:
    """Issue-queue size sweep of the out-of-order machine."""

    structure: str = "iqueue"
    n_instructions: int = QUEUE_SWEEP_N_INSTRUCTIONS
    sizes: tuple[int, ...] = PAPER_QUEUE_SIZES

    def configurations(self) -> tuple[int, ...]:
        """Queue sizes, fastest first."""
        return tuple(sorted(self.sizes))

    def cell(self, profile: BenchmarkProfile) -> "SweepCell":
        """The engine cell evaluating this sweep for one application."""
        return queue_tpi_cell(profile, self.n_instructions, self.configurations())

    def results_from_payload(self, payload: dict) -> dict[int, SweepResult]:
        """Assemble :meth:`cell`'s payload into unified sweep results."""
        cycles = QueueTimingModel(sizes=tuple(self.sizes)).cycle_table()
        return {
            int(w): SweepResult(
                config=int(w),
                tpi_ns=cycles[int(w)] / row["ipc"],
                ipc=row["ipc"],
                cycle_time_ns=cycles[int(w)],
            )
            for w, row in payload["results"].items()
        }

    def sweep(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> dict[int, SweepResult]:
        """TPI of one application at every queue size."""
        return self.results_from_payload(
            _engine(engine).run_cell(self.cell(profile))
        )

    def best(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> SweepResult:
        """The TPI-minimising queue size for one application."""
        return best_sweep_result(self.sweep(profile, engine=engine))


@dataclass(frozen=True)
class TlbStructureSweep:
    """Fast-section sweep of the backup-organised TLB."""

    structure: str = "tlb"
    n_refs: int = TLB_SWEEP_N_REFS
    warmup_refs: int = TLB_SWEEP_WARMUP_REFS

    def configurations(self) -> tuple[int, ...]:
        """Fast-section sizes, fastest first."""
        return TlbTimingModel().boundaries()

    def cell(self, profile: BenchmarkProfile) -> "SweepCell":
        """The engine cell evaluating this sweep for one application."""
        return tlb_tpi_cell(profile, self.n_refs, self.warmup_refs)

    def results_from_payload(self, payload: dict) -> dict[int, SweepResult]:
        """Assemble :meth:`cell`'s payload into unified sweep results."""
        return {
            int(f): SweepResult(
                config=int(f),
                tpi_ns=row["tpi_ns"],
                ipc=row["cycle_time_ns"] / row["tpi_ns"],
                cycle_time_ns=row["cycle_time_ns"],
            )
            for f, row in payload["breakdowns"].items()
        }

    def sweep(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> dict[int, SweepResult]:
        """TPI of one application at every fast-section size."""
        return self.results_from_payload(
            _engine(engine).run_cell(self.cell(profile))
        )

    def best(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> SweepResult:
        """The TPI-minimising fast-section size for one application."""
        return best_sweep_result(self.sweep(profile, engine=engine))


@dataclass(frozen=True)
class BranchStructureSweep:
    """Table-size sweep of the adaptive branch predictor."""

    structure: str = "bpred"
    kind: PredictorKind = PredictorKind.GSHARE
    n_branches: int = BRANCH_SWEEP_N_BRANCHES

    def configurations(self) -> tuple[int, ...]:
        """Table sizes, fastest first."""
        return tuple(sorted(BranchTimingModel().sizes))

    def cell(self, profile: BenchmarkProfile) -> "SweepCell":
        """The engine cell evaluating this sweep for one application."""
        return branch_tpi_cell(profile, self.kind, self.n_branches)

    def results_from_payload(self, payload: dict) -> dict[int, SweepResult]:
        """Assemble :meth:`cell`'s payload into unified sweep results."""
        return {
            int(s): SweepResult(
                config=int(s),
                tpi_ns=row["tpi_ns"],
                ipc=row["cycle_time_ns"] / row["tpi_ns"],
                cycle_time_ns=row["cycle_time_ns"],
            )
            for s, row in payload["breakdowns"].items()
        }

    def sweep(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> dict[int, SweepResult]:
        """TPI of one application at every table size."""
        return self.results_from_payload(
            _engine(engine).run_cell(self.cell(profile))
        )

    def best(
        self,
        profile: BenchmarkProfile,
        *,
        engine: ExperimentEngine | None = None,
    ) -> SweepResult:
        """The TPI-minimising table size for one application."""
        return best_sweep_result(self.sweep(profile, engine=engine))


def all_structure_sweeps() -> tuple:
    """One default-configured sweep per structure (protocol instances)."""
    return (
        CacheStructureSweep(),
        QueueStructureSweep(),
        TlbStructureSweep(),
        BranchStructureSweep(),
    )
