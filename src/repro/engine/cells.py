"""Sweep cells: the engine's unit of schedulable, cacheable work.

A **cell** is one (workload x structure-configuration-range) evaluation
— e.g. "the cache-study TPI sweep of compress over boundaries 1..8" or
"the interval TPI series of turb3d at a 64-entry queue".  Cells are
deliberately small, self-describing records:

* the ``spec`` is a plain JSON-able mapping, so a cell can be hashed
  into a content-addressed cache key and shipped to a worker process
  under ``ProcessPoolExecutor``'s spawn start method;
* the **payload** an evaluator returns is likewise plain JSON (dicts,
  lists, numbers), so cached and freshly computed cells are
  indistinguishable — which is what makes ``--jobs 1`` and ``--jobs N``
  (and cold versus warm cache) bitwise identical.

Evaluators are registered per cell *kind* in a module-level table; the
pool target :func:`evaluate_chunk` is a top-level function, so spawned
workers re-import this module and find every evaluator registered.
Expensive intermediates (stack-distance histograms) are memoised per
process, so cells sharing a trace amortise it within a worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.cache.config import PAPER_GEOMETRY, CacheGeometry
from repro.cache.stackdist import DepthHistogram, StackDistanceEngine
from repro.cache.timing import CacheTimingModel, LatencyMode
from repro.cache.tpi import CacheTpiModel, TpiBreakdown
from repro.errors import EngineError
from repro.obs.trace import span
from repro.ooo.machine import run_window_sweep
from repro.tech.cacti import CacheIncrementTiming
from repro.tlb.simulator import PageStackEngine, TlbDepthHistogram
from repro.tlb.timing import TLB_TOTAL_ENTRIES
from repro.tlb.tpi import TlbTpiModel
from repro.branch.predictors import PredictorKind
from repro.branch.tpi import BranchTpiModel
from repro.branch.workloads import branch_profile_for
from repro.tlb.workloads import generate_page_trace, tlb_profile_for
from repro.workloads.address_trace import generate_address_trace
from repro.workloads.instruction_trace import generate_instruction_trace
from repro.workloads.profiles import BenchmarkProfile, IlpProfile
from repro.workloads.suite import get_profile

if TYPE_CHECKING:
    from repro.obs.stitch import TraceContext


@dataclass(frozen=True)
class SweepCell:
    """One unit of engine work: a registered ``kind`` plus its spec.

    The spec must contain only JSON-able values (numbers, strings,
    booleans, ``None``, and lists/dicts of those) — it doubles as the
    cell's cache identity.
    """

    kind: str
    spec: Mapping[str, Any]


CellEvaluator = Callable[[Mapping[str, Any]], dict]

_EVALUATORS: dict[str, CellEvaluator] = {}


def register_evaluator(kind: str) -> Callable[[CellEvaluator], CellEvaluator]:
    """Register the evaluator for one cell kind."""

    def deco(fn: CellEvaluator) -> CellEvaluator:
        _EVALUATORS[kind] = fn
        return fn

    return deco


def cell_kinds() -> tuple[str, ...]:
    """Every registered cell kind, sorted."""
    return tuple(sorted(_EVALUATORS))


def evaluate_cell(cell: SweepCell) -> dict:
    """Evaluate one cell in this process."""
    try:
        fn = _EVALUATORS[cell.kind]
    except KeyError:
        raise EngineError(
            f"no evaluator registered for cell kind {cell.kind!r}; "
            f"known kinds: {cell_kinds()}"
        ) from None
    return fn(cell.spec)


def evaluate_chunk(
    cells: Sequence[SweepCell],
    chunk: int = 0,
    attempt: int = 0,
    trace: "TraceContext | None" = None,
    shard_path: str | None = None,
) -> list[tuple[dict, float]]:
    """Pool target: evaluate a chunk, returning (payload, wall_s) pairs.

    Top-level on purpose — spawn-mode workers must be able to unpickle
    a reference to it.  When ``trace`` and ``shard_path`` are given the
    chunk runs under a worker-side shard tracer (see
    :mod:`repro.obs.stitch`): the ``engine.worker`` / ``cell.evaluate``
    spans land in the shard file and the engine stitches them into the
    parent trace.  In-process callers pass neither, and the spans go to
    whatever tracer is active (or the null tracer).
    """
    if trace is not None and shard_path is not None:
        from repro.obs.stitch import shard_tracer

        tracer = shard_tracer(trace, shard_path)
        with tracer:
            return _evaluate_chunk_spans(cells, chunk, attempt)
    return _evaluate_chunk_spans(cells, chunk, attempt)


def _evaluate_chunk_spans(
    cells: Sequence[SweepCell], chunk: int, attempt: int
) -> list[tuple[dict, float]]:
    out: list[tuple[dict, float]] = []
    with span(
        "engine.worker",
        level="engine",
        chunk=chunk,
        attempt=attempt,
        pid=os.getpid(),
        n_cells=len(cells),
    ):
        for index, cell in enumerate(cells):
            with span(
                "cell.evaluate",
                index=index,
                kind=cell.kind,
                cached=False,
                retry=attempt > 0,
            ) as cell_span:
                start = time.perf_counter()
                payload = evaluate_cell(cell)
                wall = time.perf_counter() - start
                cell_span.set(wall_s=wall)
            out.append((payload, wall))
    return out


# ---------------------------------------------------------------------------
# spec <-> model helpers
# ---------------------------------------------------------------------------


def geometry_spec(geometry: CacheGeometry) -> dict | None:
    """Serialise a cache geometry for a cell spec (``None`` = paper's)."""
    if geometry == PAPER_GEOMETRY:
        return None
    return {
        "n_increments": geometry.n_increments,
        "ways_per_increment": geometry.ways_per_increment,
        "block_bytes": geometry.block_bytes,
        "increment_bytes": geometry.increment_bytes,
        "increment_timing": asdict(geometry.increment_timing),
    }


def geometry_from_spec(spec: Mapping[str, Any] | None) -> CacheGeometry:
    """Rebuild a cache geometry from its cell-spec form."""
    if spec is None:
        return PAPER_GEOMETRY
    return CacheGeometry(
        n_increments=int(spec["n_increments"]),
        ways_per_increment=int(spec["ways_per_increment"]),
        block_bytes=int(spec["block_bytes"]),
        increment_bytes=int(spec["increment_bytes"]),
        increment_timing=CacheIncrementTiming(**spec["increment_timing"]),
    )


def ilp_spec(profile: IlpProfile) -> dict:
    """Serialise an ILP profile (including a nested deep variant)."""
    return asdict(profile)


def ilp_from_spec(spec: Mapping[str, Any]) -> IlpProfile:
    """Rebuild an ILP profile from its cell-spec form."""
    fields = dict(spec)
    if fields.get("deep_variant") is not None:
        fields["deep_variant"] = ilp_from_spec(fields["deep_variant"])
    return IlpProfile(**fields)


def tpi_breakdown_from_payload(row: Mapping[str, Any]) -> TpiBreakdown:
    """Rebuild a cache-study TPI breakdown from a cell payload row."""
    return TpiBreakdown(
        l1_increments=int(row["l1_increments"]),
        cycle_time_ns=float(row["cycle_time_ns"]),
        tpi_ns=float(row["tpi_ns"]),
        tpi_miss_ns=float(row["tpi_miss_ns"]),
        l1_miss_ratio=float(row["l1_miss_ratio"]),
        l2_hit_latency_cycles=int(row["l2_hit_latency_cycles"]),
        n_references=int(row["n_references"]),
        n_instructions=float(row["n_instructions"]),
    )


# ---------------------------------------------------------------------------
# per-process memos for expensive intermediates
# ---------------------------------------------------------------------------

_HISTOGRAM_MEMO: dict[tuple, DepthHistogram] = {}
_TLB_HISTOGRAM_MEMO: dict[tuple, TlbDepthHistogram] = {}


def cached_histogram(
    profile: BenchmarkProfile,
    n_refs: int,
    warmup_refs: int,
    geometry: CacheGeometry = PAPER_GEOMETRY,
) -> DepthHistogram:
    """Stack-depth histogram of one application's trace (memoised).

    One stack-distance pass evaluates every boundary position at once;
    the per-process memo keeps suite-wide sweeps cheap both in the main
    process and inside pool workers.
    """
    key = (profile.name, n_refs, warmup_refs, profile.seed, geometry)
    hit = _HISTOGRAM_MEMO.get(key)
    if hit is not None:
        return hit
    if profile.memory is None:
        raise ValueError(f"{profile.name} is not part of the cache study")
    addresses = generate_address_trace(
        profile.memory, n_refs + warmup_refs, profile.seed
    )
    engine = StackDistanceEngine(geometry)
    if warmup_refs:
        engine.process(addresses[:warmup_refs])
    histogram = DepthHistogram.from_depths(
        geometry, engine.process(addresses[warmup_refs:])
    )
    _HISTOGRAM_MEMO[key] = histogram
    return histogram


def cached_tlb_histogram(
    profile: BenchmarkProfile, n_refs: int, warmup_refs: int
) -> TlbDepthHistogram:
    """Page-stack histogram of one application's trace (memoised)."""
    key = (profile.name, n_refs, warmup_refs)
    hit = _TLB_HISTOGRAM_MEMO.get(key)
    if hit is not None:
        return hit
    trace = generate_page_trace(tlb_profile_for(profile), n_refs)
    engine = PageStackEngine(TLB_TOTAL_ENTRIES)
    engine.process(trace[:warmup_refs])
    histogram = TlbDepthHistogram.from_depths(
        TLB_TOTAL_ENTRIES, engine.process(trace[warmup_refs:])
    )
    _TLB_HISTOGRAM_MEMO[key] = histogram
    return histogram


# ---------------------------------------------------------------------------
# cell builders + evaluators
# ---------------------------------------------------------------------------


def cache_tpi_cell(
    profile: BenchmarkProfile,
    n_refs: int,
    warmup_refs: int,
    boundaries: Sequence[int],
    geometry: CacheGeometry = PAPER_GEOMETRY,
    mode: LatencyMode = LatencyMode.CLOCK,
) -> SweepCell:
    """Cell: cache-study TPI breakdowns of one app at every boundary."""
    return SweepCell(
        kind="cache_tpi",
        spec={
            "profile": profile.name,
            "n_refs": int(n_refs),
            "warmup_refs": int(warmup_refs),
            "boundaries": [int(k) for k in boundaries],
            "geometry": geometry_spec(geometry),
            "mode": mode.value,
        },
    )


@register_evaluator("cache_tpi")
def _evaluate_cache_tpi_cell(spec: Mapping[str, Any]) -> dict:
    profile = get_profile(spec["profile"])
    geometry = geometry_from_spec(spec.get("geometry"))
    mode = LatencyMode(spec.get("mode", "clock"))
    timing = CacheTimingModel(geometry=geometry, mode=mode)
    model = CacheTpiModel(timing=timing)
    histogram = cached_histogram(
        profile, spec["n_refs"], spec["warmup_refs"], geometry
    )
    rows: dict[str, dict] = {}
    for k in spec["boundaries"]:
        b = model.evaluate(histogram, profile.memory.load_store_fraction, int(k))
        row = {
            "l1_increments": b.l1_increments,
            "cycle_time_ns": b.cycle_time_ns,
            "tpi_ns": b.tpi_ns,
            "tpi_miss_ns": b.tpi_miss_ns,
            "l1_miss_ratio": b.l1_miss_ratio,
            "l2_hit_latency_cycles": b.l2_hit_latency_cycles,
            "n_references": b.n_references,
            "n_instructions": b.n_instructions,
        }
        if mode is LatencyMode.LATENCY:
            row["l1_latency_cycles"] = timing.l1_latency_cycles(int(k))
        rows[str(k)] = row
    return {"breakdowns": rows}


def queue_tpi_cell(
    profile: BenchmarkProfile, n_instructions: int, sizes: Sequence[int]
) -> SweepCell:
    """Cell: out-of-order machine results of one app at every queue size."""
    return SweepCell(
        kind="queue_tpi",
        spec={
            "profile": profile.name,
            "n_instructions": int(n_instructions),
            "sizes": [int(w) for w in sizes],
        },
    )


@register_evaluator("queue_tpi")
def _evaluate_queue_tpi_cell(spec: Mapping[str, Any]) -> dict:
    profile = get_profile(spec["profile"])
    trace = generate_instruction_trace(
        profile.ilp, spec["n_instructions"], profile.seed
    )
    results = run_window_sweep(trace, tuple(int(w) for w in spec["sizes"]))
    return {
        "results": {
            str(w): {
                "ipc": r.ipc,
                "cycles": r.cycles,
                "n_instructions": r.n_instructions,
            }
            for w, r in results.items()
        }
    }


def tlb_tpi_cell(
    profile: BenchmarkProfile, n_refs: int, warmup_refs: int
) -> SweepCell:
    """Cell: TLB TPI breakdowns of one app at every fast-section size."""
    return SweepCell(
        kind="tlb_tpi",
        spec={
            "profile": profile.name,
            "n_refs": int(n_refs),
            "warmup_refs": int(warmup_refs),
        },
    )


@register_evaluator("tlb_tpi")
def _evaluate_tlb_tpi_cell(spec: Mapping[str, Any]) -> dict:
    profile = get_profile(spec["profile"])
    histogram = cached_tlb_histogram(profile, spec["n_refs"], spec["warmup_refs"])
    model = TlbTpiModel()
    rows: dict[str, dict] = {}
    for f in model.timing.boundaries():
        b = model.evaluate(histogram, profile.memory.load_store_fraction, f)
        rows[str(f)] = {
            "fast_entries": b.fast_entries,
            "cycle_time_ns": b.cycle_time_ns,
            "tpi_ns": b.tpi_ns,
            "tpi_tlb_ns": b.tpi_tlb_ns,
            "fast_hit_ratio": b.fast_hit_ratio,
        }
    return {"breakdowns": rows}


def branch_tpi_cell(
    profile: BenchmarkProfile, kind: PredictorKind, n_branches: int
) -> SweepCell:
    """Cell: branch TPI breakdowns of one app at every table size."""
    return SweepCell(
        kind="branch_tpi",
        spec={
            "profile": profile.name,
            "predictor": kind.value,
            "n_branches": int(n_branches),
        },
    )


@register_evaluator("branch_tpi")
def _evaluate_branch_tpi_cell(spec: Mapping[str, Any]) -> dict:
    profile = get_profile(spec["profile"])
    model = BranchTpiModel(kind=PredictorKind(spec["predictor"]))
    rows: dict[str, dict] = {}
    for s in sorted(model.timing.sizes):
        b = model.evaluate(
            branch_profile_for(profile), s, n_branches=spec["n_branches"]
        )
        rows[str(s)] = {
            "n_entries": b.n_entries,
            "cycle_time_ns": b.cycle_time_ns,
            "misprediction_rate": b.misprediction_rate,
            "tpi_ns": b.tpi_ns,
        }
    return {"breakdowns": rows}


def interval_series_cell(
    workload_name: str,
    segments: Sequence[tuple[IlpProfile, int]],
    window: int,
    seed: int,
    interval_instructions: int,
) -> SweepCell:
    """Cell: per-interval TPI series of one phased workload at one window."""
    return SweepCell(
        kind="interval_series",
        spec={
            "workload": workload_name,
            "segments": [
                {"ilp": ilp_spec(ilp), "n_instructions": int(n)}
                for ilp, n in segments
            ],
            "window": int(window),
            "seed": int(seed),
            "interval_instructions": int(interval_instructions),
        },
    )


@register_evaluator("interval_series")
def _evaluate_interval_series(spec: Mapping[str, Any]) -> dict:
    # Local imports: phases/intervals sit above this module in some
    # harnesses, keep the cell layer's import surface minimal.
    from repro.ooo.intervals import interval_tpi_series
    from repro.ooo.machine import MachineConfig, OutOfOrderMachine
    from repro.ooo.timing import QueueTimingModel
    from repro.workloads.phases import PhasedWorkload, PhaseSegment

    workload = PhasedWorkload(
        name=spec["workload"],
        segments=tuple(
            PhaseSegment(ilp_from_spec(s["ilp"]), s["n_instructions"])
            for s in spec["segments"]
        ),
    )
    trace = workload.generate(spec["seed"])
    window = spec["window"]
    result = OutOfOrderMachine(MachineConfig(window=window)).run(trace)
    series = interval_tpi_series(
        result,
        QueueTimingModel().cycle_time_ns(window),
        spec["interval_instructions"],
    )
    return {
        "window": window,
        "cycle_time_ns": series.cycle_time_ns,
        "interval_instructions": series.interval_instructions,
        "tpi_ns": [float(t) for t in series.tpi_ns],
    }
