"""Content-addressed on-disk cache for sweep-cell results.

Every cell's identity is the SHA-256 of a canonical JSON document
combining three ingredients:

* a **technology fingerprint** — the tech-node constants and the derived
  per-structure timing tables.  Editing a calibration constant in
  :mod:`repro.tech` silently invalidates every cached sweep;
* the cell ``kind`` (cache_tpi, queue_tpi, ...); and
* the cell ``spec`` — the structure-configuration range plus the
  workload description (profile name, trace lengths, seeds, geometry).

Entries are JSON files under ``<cache_dir>/<key[:2]>/<key>.json``,
written atomically (temp file + rename) so concurrent engines sharing a
cache directory never observe torn entries.  Unreadable or mismatched
entries are treated as misses and rewritten, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from repro.engine.cells import SweepCell

#: Bump when the stored entry layout changes; old entries become misses.
CACHE_SCHEMA_VERSION: int = 1


def technology_fingerprint() -> dict:
    """Everything timing-related that a cached sweep result depends on.

    Reads the :mod:`repro.tech.parameters` constants dynamically (not at
    import time) and evaluates the four structures' timing tables at the
    default node, so any recalibration — constants or formulas — changes
    the fingerprint and with it every cache key.
    """
    from repro.branch.timing import BranchTimingModel
    from repro.cache.config import PAPER_GEOMETRY, PAPER_MAX_L1_INCREMENTS
    from repro.cache.timing import CacheTimingModel
    from repro.ooo.timing import QueueTimingModel
    from repro.tech import parameters
    from repro.tlb.timing import TlbTimingModel

    cache_timing = CacheTimingModel()
    queue_timing = QueueTimingModel()
    tlb_timing = TlbTimingModel()
    branch_timing = BranchTimingModel()
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "wire_r_ohm_per_mm": parameters.WIRE_RESISTANCE_OHM_PER_MM,
        "wire_c_pf_per_mm": parameters.WIRE_CAPACITANCE_PF_PER_MM,
        "repeater_rc_ps": parameters.REPEATER_RC_PS_AT_REFERENCE,
        "subarray_2kb_height_mm": parameters.SUBARRAY_2KB_HEIGHT_MM,
        "cache_cycle_ns": {
            str(k): cache_timing.cycle_time_ns(k)
            for k in PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
        },
        "queue_cycle_ns": {
            str(w): c for w, c in queue_timing.cycle_table().items()
        },
        "tlb_lookup_ns": {
            str(f): tlb_timing.lookup_time_ns(f) for f in tlb_timing.boundaries()
        },
        "branch_lookup_ns": {
            str(s): d for s, d in branch_timing.cycle_table().items()
        },
    }


def canonical_json(document: Mapping[str, Any]) -> str:
    """Stable serialisation used for hashing (sorted keys, no spaces)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def cell_key(cell: SweepCell, fingerprint: Mapping[str, Any] | None = None) -> str:
    """Content-address of one cell: SHA-256 hex over its identity."""
    if fingerprint is None:
        fingerprint = technology_fingerprint()
    identity = {
        "tech": dict(fingerprint),
        "kind": cell.kind,
        "spec": dict(cell.spec),
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed JSON store for sweep-cell payloads."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        # The fingerprint is captured once per cache handle; rebuilding
        # the handle (one per engine) re-reads the live constants.
        self._fingerprint = technology_fingerprint()

    def key(self, cell: SweepCell) -> str:
        """Cache key of one cell under this handle's fingerprint."""
        return cell_key(cell, self._fingerprint)

    def path(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The cached payload for ``key``, or ``None`` on any miss.

        Corrupt or schema-mismatched entries are misses, not errors:
        they are recomputed and overwritten.
        """
        path = self.path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def store(self, key: str, cell: SweepCell, payload: Mapping[str, Any]) -> Path:
        """Atomically persist one cell's payload."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": cell.kind,
            "spec": dict(cell.spec),
            "payload": dict(payload),
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, kind: str | None = None) -> int:
        """Drop cached entries, returning how many were removed.

        With ``kind`` only entries of that cell kind are dropped (the
        entry header records it); without, the whole cache is cleared.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return removed
        for path in sorted(self.cache_dir.glob("*/*.json")):
            if kind is not None:
                try:
                    with path.open("r", encoding="utf-8") as fh:
                        entry = json.load(fh)
                except (OSError, ValueError):
                    entry = {}
                if entry.get("kind") != kind:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size(self) -> int:
        """Number of entries currently on disk."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))
