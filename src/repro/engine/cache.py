"""Content-addressed on-disk cache for sweep-cell results.

Every cell's identity is the SHA-256 of a canonical JSON document
combining three ingredients:

* a **technology fingerprint** — the tech-node constants and the derived
  per-structure timing tables.  Editing a calibration constant in
  :mod:`repro.tech` silently invalidates every cached sweep;
* the cell ``kind`` (cache_tpi, queue_tpi, ...); and
* the cell ``spec`` — the structure-configuration range plus the
  workload description (profile name, trace lengths, seeds, geometry).

Entries are JSON files under ``<cache_dir>/<key[:2]>/<key>.json``,
written atomically (temp file + rename) so concurrent engines sharing a
cache directory never observe torn entries.  Every entry records a
SHA-256 **checksum of its payload**; an entry that is unreadable, not
valid JSON, or whose payload no longer matches its checksum is
*corrupt*: it is logged, counted on the
``repro_engine_cache_corrupt_total`` metric, moved into the
``<cache_dir>/quarantine/`` directory for post-mortem inspection, and
reported as a miss so the cell is recomputed.  Entries from an older
:data:`CACHE_SCHEMA_VERSION` are silent misses (expected after an
upgrade), not corruption.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.engine.cells import SweepCell
from repro.errors import CacheCorruptionError
from repro.obs.metrics import metrics

#: Bump when the stored entry layout changes; old entries become misses.
#: Version 2 added the payload checksum.
CACHE_SCHEMA_VERSION: int = 2

_LOG = logging.getLogger("repro.engine.cache")


def technology_fingerprint() -> dict:
    """Everything timing-related that a cached sweep result depends on.

    Reads the :mod:`repro.tech.parameters` constants dynamically (not at
    import time) and evaluates the four structures' timing tables at the
    default node, so any recalibration — constants or formulas — changes
    the fingerprint and with it every cache key.
    """
    from repro.branch.timing import BranchTimingModel
    from repro.cache.config import PAPER_GEOMETRY, PAPER_MAX_L1_INCREMENTS
    from repro.cache.timing import CacheTimingModel
    from repro.ooo.timing import QueueTimingModel
    from repro.tech import parameters
    from repro.tlb.timing import TlbTimingModel

    cache_timing = CacheTimingModel()
    queue_timing = QueueTimingModel()
    tlb_timing = TlbTimingModel()
    branch_timing = BranchTimingModel()
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "wire_r_ohm_per_mm": parameters.WIRE_RESISTANCE_OHM_PER_MM,
        "wire_c_pf_per_mm": parameters.WIRE_CAPACITANCE_PF_PER_MM,
        "repeater_rc_ps": parameters.REPEATER_RC_PS_AT_REFERENCE,
        "subarray_2kb_height_mm": parameters.SUBARRAY_2KB_HEIGHT_MM,
        "cache_cycle_ns": {
            str(k): cache_timing.cycle_time_ns(k)
            for k in PAPER_GEOMETRY.boundary_positions(PAPER_MAX_L1_INCREMENTS)
        },
        "queue_cycle_ns": {
            str(w): c for w, c in queue_timing.cycle_table().items()
        },
        "tlb_lookup_ns": {
            str(f): tlb_timing.lookup_time_ns(f) for f in tlb_timing.boundaries()
        },
        "branch_lookup_ns": {
            str(s): d for s, d in branch_timing.cycle_table().items()
        },
    }


def canonical_json(document: Mapping[str, Any]) -> str:
    """Stable serialisation used for hashing (sorted keys, no spaces)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def cell_key(cell: SweepCell, fingerprint: Mapping[str, Any] | None = None) -> str:
    """Content-address of one cell: SHA-256 hex over its identity."""
    if fingerprint is None:
        fingerprint = technology_fingerprint()
    identity = {
        "tech": dict(fingerprint),
        "kind": cell.kind,
        "spec": dict(cell.spec),
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """Integrity checksum of one entry's payload (SHA-256 hex)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheVerifyReport:
    """Outcome of :meth:`ResultCache.verify` over a whole cache."""

    total: int
    ok: int
    stale: int
    corrupt: tuple[str, ...]

    @property
    def healthy(self) -> bool:
        """Whether no entry failed integrity verification."""
        return not self.corrupt


class ResultCache:
    """Content-addressed JSON store for sweep-cell payloads."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        # The fingerprint is captured once per cache handle; rebuilding
        # the handle (one per engine) re-reads the live constants.
        self._fingerprint = technology_fingerprint()

    @property
    def fingerprint(self) -> dict:
        """The technology fingerprint captured by this handle."""
        return self._fingerprint

    def key(self, cell: SweepCell) -> str:
        """Cache key of one cell under this handle's fingerprint."""
        return cell_key(cell, self._fingerprint)

    def path(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.cache_dir / "quarantine"

    def load(self, key: str, strict: bool = False) -> dict | None:
        """The cached payload for ``key``, or ``None`` on any miss.

        A missing entry or one from an older schema version is a plain
        miss.  A *corrupt* entry — unreadable, not JSON, payload
        missing, or checksum mismatch — is logged, counted on
        ``repro_engine_cache_corrupt_total`` and quarantined; with
        ``strict=False`` (the default) it then reads as a miss so the
        cell is recomputed, with ``strict=True`` it raises
        :class:`~repro.errors.CacheCorruptionError` instead.
        """
        path = self.path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._corrupt(key, path, f"unreadable: {exc}", strict)
            return None
        payload, reason = self._parse_entry(raw)
        if reason == "stale":
            return None
        if reason is not None:
            self._corrupt(key, path, reason, strict)
            return None
        return payload

    @staticmethod
    def _parse_entry(raw: str) -> tuple[dict | None, str | None]:
        """``(payload, fault)`` of one entry's bytes; healthy = no fault.

        ``"stale"`` is the one non-corrupt fault: a well-formed entry
        from a different schema version.
        """
        try:
            entry = json.loads(raw)
        except ValueError as exc:
            return None, f"not valid JSON ({exc})"
        if not isinstance(entry, dict):
            return None, "entry is not a JSON object"
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None, "stale"
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None, "entry has no payload object"
        recorded = entry.get("checksum")
        if recorded != payload_checksum(payload):
            return None, f"payload checksum mismatch (recorded {recorded!r})"
        return payload, None

    def _corrupt(self, key: str, path: Path, reason: str, strict: bool) -> None:
        """Log, count and quarantine one corrupt entry; raise if strict."""
        error = CacheCorruptionError(
            f"corrupt cache entry {key[:12]}… at {path}: {reason}"
        )
        _LOG.warning("quarantining %s", error)
        metrics().counter(
            "repro_engine_cache_corrupt_total",
            "corrupt cache entries detected and quarantined",
        ).inc()
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        # The .corrupt suffix keeps quarantined files out of the
        # ``*/*.json`` globs that size() and invalidate() walk.
        dest = self.quarantine_dir / f"{path.name}.corrupt"
        try:
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        if strict:
            raise error

    def quarantined(self) -> int:
        """Number of corrupt entries currently held in quarantine."""
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for _ in self.quarantine_dir.glob("*.corrupt"))

    def verify(self) -> CacheVerifyReport:
        """Integrity-check every entry, quarantining the corrupt ones.

        Corrupt entries are handled exactly as on a :meth:`load` hit —
        warning, metrics counter, quarantine — and their keys are
        returned for reporting.  Stale (old-schema) entries are counted
        but left in place; they are misses anyway and are overwritten
        on recompute.
        """
        total = ok = stale = 0
        corrupt: list[str] = []
        if self.cache_dir.is_dir():
            for path in sorted(self.cache_dir.glob("*/*.json")):
                if path.parent == self.quarantine_dir:
                    continue
                total += 1
                key = path.stem
                try:
                    raw = path.read_text(encoding="utf-8")
                except OSError as exc:
                    self._corrupt(key, path, f"unreadable: {exc}", strict=False)
                    corrupt.append(key)
                    continue
                _, reason = self._parse_entry(raw)
                if reason is None:
                    ok += 1
                elif reason == "stale":
                    stale += 1
                else:
                    self._corrupt(key, path, reason, strict=False)
                    corrupt.append(key)
        return CacheVerifyReport(
            total=total, ok=ok, stale=stale, corrupt=tuple(corrupt)
        )

    def store(self, key: str, cell: SweepCell, payload: Mapping[str, Any]) -> Path:
        """Atomically persist one cell's payload."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(payload)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": cell.kind,
            "spec": dict(cell.spec),
            "payload": payload,
            "checksum": payload_checksum(payload),
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp_name, path)
        # Cleanup-and-reraise: the temp file must not leak even on
        # KeyboardInterrupt, and the exception continues unswallowed.
        except BaseException:  # repro: noqa[RPR004]
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, kind: str | None = None) -> int:
        """Drop cached entries, returning how many were removed.

        With ``kind`` only entries of that cell kind are dropped (the
        entry header records it); without, the whole cache is cleared.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return removed
        for path in sorted(self.cache_dir.glob("*/*.json")):
            if kind is not None:
                try:
                    with path.open("r", encoding="utf-8") as fh:
                        entry = json.load(fh)
                except (OSError, ValueError):
                    entry = {}
                if not isinstance(entry, dict) or entry.get("kind") != kind:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size(self) -> int:
        """Number of entries currently on disk (quarantine excluded)."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))
