"""repro.engine — the parallel experiment engine.

The sweep layer every figure harness runs on: sweep **cells** (one
workload x configuration-range evaluation) are fanned out over a
process pool with deterministic chunking and ordered assembly, backed
by a content-addressed on-disk result cache and a JSONL telemetry log.

Layers
------
:mod:`repro.engine.cells`
    The cell vocabulary: picklable specs, registered evaluators, and
    the per-process memos for expensive intermediates.
:mod:`repro.engine.cache`
    Content-addressed JSON result cache (key = technology fingerprint
    + structure configuration + workload spec).
:mod:`repro.engine.telemetry`
    Structured JSONL event log (per-cell wall time, cache hit/miss
    counters, worker utilization) plus a human-readable summary.
:mod:`repro.engine.engine`
    :class:`ExperimentEngine` itself.
:mod:`repro.engine.sweeps`
    The unified :class:`~repro.core.metrics.StructureSweep`
    implementations for all four adaptive structures.

Fault tolerance — retries with backoff, pool-crash recovery, per-chunk
timeouts, checkpoint/resume and fault injection — lives in the sibling
:mod:`repro.resilience` package; the engine drives every parallel batch
through its :class:`~repro.resilience.ResilientExecutor`.
"""

from repro.engine.cache import (
    CacheVerifyReport,
    ResultCache,
    cell_key,
    payload_checksum,
    technology_fingerprint,
)
from repro.engine.cells import SweepCell, cell_kinds, evaluate_cell
from repro.engine.engine import EngineStats, ExperimentEngine, default_engine
from repro.engine.sweeps import (
    BranchStructureSweep,
    CacheStructureSweep,
    QueueStructureSweep,
    TlbStructureSweep,
    all_structure_sweeps,
)
from repro.engine.telemetry import (
    EVENT_SCHEMA,
    TelemetryLog,
    read_events,
    validate_events,
)

__all__ = [
    "ExperimentEngine",
    "EngineStats",
    "default_engine",
    "SweepCell",
    "cell_kinds",
    "evaluate_cell",
    "CacheVerifyReport",
    "ResultCache",
    "cell_key",
    "payload_checksum",
    "technology_fingerprint",
    "TelemetryLog",
    "EVENT_SCHEMA",
    "read_events",
    "validate_events",
    "CacheStructureSweep",
    "QueueStructureSweep",
    "TlbStructureSweep",
    "BranchStructureSweep",
    "all_structure_sweeps",
]
