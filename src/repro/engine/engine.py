"""The parallel experiment engine.

:class:`ExperimentEngine` evaluates a batch of sweep cells through four
layers, in order:

1. **resume** — with a journal and ``resume=True``, cells already
   recorded by an earlier (possibly killed) run are served from the
   checkpoint journal;
2. **cache** — cells whose content-address is already on disk are
   served without computing anything;
3. **fan-out** — the remaining cells are split into deterministic
   contiguous chunks and evaluated on a ``ProcessPoolExecutor`` using
   the ``spawn`` start method (the portable one — nothing in a cell may
   rely on forked state), driven by a
   :class:`~repro.resilience.ResilientExecutor` that retries transient
   failures, respawns crashed pools, times out hung workers, and
   degrades to serial execution past the pool-respawn budget;
4. **assembly** — payloads are reassembled strictly in submission
   order, so the result list is independent of worker scheduling *and*
   of any recovery action, and a ``jobs=1`` run is bitwise identical to
   a ``jobs=N`` run — faulted or not.

``jobs=1`` short-circuits the pool entirely and evaluates inline, which
is also the fallback while debugging worker-side failures.  Telemetry
(one JSONL event per cell plus run bracketing) and hit/miss counters are
recorded on every run; see :mod:`repro.engine.telemetry`.  Failure
semantics, the fault taxonomy, and the checkpoint/resume workflow are
documented in ``docs/resilience.md``.
"""

from __future__ import annotations

import math
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.engine.cache import ResultCache
from repro.engine.cells import SweepCell
from repro.engine.telemetry import TelemetryLog, new_run_id
from repro.errors import EngineError
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.obs.profile import add_sample, profiled
from repro.obs.stitch import TraceContext, stitch_shards
from repro.resilience.executor import ResilientExecutor
from repro.resilience.faults import FaultPlan, corrupt_cache_entry
from repro.resilience.journal import SweepJournal
from repro.resilience.policy import RetryPolicy

if TYPE_CHECKING:
    from repro.dispatch.plane import DispatchPlane

#: Chunks submitted per worker: small enough to load-balance uneven
#: cells, large enough to amortise pickling and per-future overhead.
CHUNKS_PER_WORKER: int = 4


@dataclass
class EngineStats:
    """Aggregate counters over every ``map`` call of one engine."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    resumed: int = 0
    elapsed_s: float = 0.0
    busy_s: float = 0.0
    runs: int = 0

    def merge_run(
        self, hits: int, misses: int, resumed: int, elapsed: float, busy: float
    ) -> None:
        """Fold one run's counters in."""
        self.cells += hits + misses
        self.cache_hits += hits
        self.cache_misses += misses
        self.resumed += resumed
        self.elapsed_s += elapsed
        self.busy_s += busy
        self.runs += 1


@dataclass
class ExperimentEngine:
    """Runs sweep cells with optional parallelism, caching and telemetry.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` evaluates inline (no pool).
    cache_dir:
        Directory of the content-addressed result cache; ``None``
        disables caching entirely.
    use_cache:
        ``False`` (the CLI's ``--no-cache``) keeps the directory
        configured but neither reads nor writes it.
    telemetry:
        Path of the JSONL event log; ``None`` disables persistence
        (counters in :attr:`stats` are kept either way).
    chunk_size:
        Cells per worker chunk; ``None`` (the default) uses the
        ``ceil(n / (jobs * 4))`` load-balancing heuristic.
    retry:
        The :class:`~repro.resilience.RetryPolicy` governing retries,
        per-chunk timeouts and pool respawns; ``None`` uses the policy
        defaults (3 attempts, no timeout, 2 respawns).
    fault_plan:
        Deterministic fault injection for tests and drills; ``None``
        (the default, and the production setting) injects nothing.
    journal:
        Path of the checkpoint journal; completed cells are durably
        appended as they finish.  ``None`` disables journaling.
    resume:
        Serve cells already recorded in ``journal`` instead of
        recomputing them.  Requires ``journal``.
    dispatcher:
        A :class:`~repro.dispatch.DispatchPlane` to fan chunks out to
        remote ``repro worker`` processes.  ``None`` (the default)
        keeps everything on the local pool; a plane with no healthy
        workers degrades to the local pool per batch, so attaching one
        never changes results — only where they are computed.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    use_cache: bool = True
    telemetry: str | Path | None = None
    chunk_size: int | None = None
    retry: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    journal: str | Path | None = None
    resume: bool = False
    dispatcher: "DispatchPlane | None" = None
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1, got {self.chunk_size}; pass None "
                "for the automatic ceil(cells / (jobs * 4)) heuristic"
            )
        if self.cache_dir is not None:
            cache_path = Path(self.cache_dir)
            if str(self.cache_dir) == "":
                raise EngineError(
                    "cache_dir must be a directory path, got an empty string; "
                    "pass None to disable caching"
                )
            if cache_path.exists() and not cache_path.is_dir():
                raise EngineError(
                    f"cache_dir {str(self.cache_dir)!r} exists but is not a "
                    "directory; point it at a directory (it is created on "
                    "first write) or pass None to disable caching"
                )
        if self.resume and self.journal is None:
            raise EngineError(
                "resume=True needs a journal path to resume from; pass "
                "journal=<path> (the CLI spells this --journal PATH --resume)"
            )
        self._retry = self.retry if self.retry is not None else RetryPolicy()
        self._cache = (
            ResultCache(self.cache_dir)
            if self.cache_dir is not None and self.use_cache
            else None
        )
        # The journal shares the cache's fingerprint capture so both
        # agree on every cell key.
        self._journal = (
            SweepJournal(
                self.journal,
                fingerprint=self._cache.fingerprint if self._cache else None,
            )
            if self.journal is not None
            else None
        )
        self._telemetry = TelemetryLog(self.telemetry)

    # -- cache passthrough ------------------------------------------------

    @property
    def cache(self) -> ResultCache | None:
        """The active result cache, if any."""
        return self._cache

    @property
    def sweep_journal(self) -> SweepJournal | None:
        """The active checkpoint journal, if any."""
        return self._journal

    def invalidate_cache(self, kind: str | None = None) -> int:
        """Drop cached results (all, or one cell kind); returns count."""
        if self._cache is None:
            return 0
        return self._cache.invalidate(kind)

    # -- execution --------------------------------------------------------

    def run_cell(self, cell: SweepCell) -> dict:
        """Evaluate a single cell (convenience wrapper over :meth:`map`)."""
        return self.map([cell])[0]

    def map(
        self, cells: Sequence[SweepCell], deadline_s: float | None = None
    ) -> list[dict]:
        """Evaluate every cell, returning payloads in submission order.

        ``deadline_s`` is the caller's remaining end-to-end budget: it
        clamps the retry policy's per-chunk timeout so a pooled run
        cannot sit on a hung worker past the deadline.  The serial path
        (``jobs=1``) evaluates inline and cannot be interrupted, so
        there the deadline is only enforced by the caller afterwards.
        """
        cells = list(cells)
        run_id = new_run_id()
        with obs.span(
            "engine.map", level="engine",
            run_id=run_id, jobs=self.jobs, n_cells=len(cells),
            cache_enabled=self._cache is not None,
        ) as span, profiled("engine.map"):
            return self._map_traced(cells, run_id, span, deadline_s)

    def _map_traced(
        self,
        cells: list[SweepCell],
        run_id: str,
        span,
        deadline_s: float | None = None,
    ) -> list[dict]:
        start = time.perf_counter()
        self._telemetry.emit(
            "run_start",
            run_id=run_id,
            jobs=self.jobs,
            n_cells=len(cells),
            cache_enabled=self._cache is not None,
            cache_dir=str(self.cache_dir) if self.cache_dir is not None else None,
        )

        self._apply_cache_corruption_faults(cells)

        payloads: list[dict | None] = [None] * len(cells)
        walls: list[float] = [0.0] * len(cells)
        sources: list[str] = ["computed"] * len(cells)
        keys: list[str | None] = [None] * len(cells)
        misses: list[int] = []
        resumed = (
            self._journal.load() if self._journal is not None and self.resume else {}
        )
        n_resumed = 0

        for i, cell in enumerate(cells):
            if self._cache is not None:
                keys[i] = self._cache.key(cell)
            elif self._journal is not None:
                keys[i] = self._journal.key(cell)
            if keys[i] is not None and keys[i] in resumed:
                payloads[i] = resumed[keys[i]]
                sources[i] = "journal"
                n_resumed += 1
                if self._cache is not None:
                    self._cache.store(keys[i], cell, payloads[i])
                continue
            if self._cache is None:
                misses.append(i)
                continue
            probe_start = time.perf_counter()
            hit = self._cache.load(keys[i])
            if hit is None:
                misses.append(i)
            else:
                payloads[i] = hit
                walls[i] = time.perf_counter() - probe_start
                sources[i] = "cache"

        report = None
        if misses:
            report = self._compute(
                cells, misses, keys, payloads, walls, span, deadline_s
            )

        elapsed = time.perf_counter() - start
        busy = sum(walls[i] for i in misses)
        n_hits = len(cells) - len(misses)
        wall_hist = metrics().histogram(
            "repro_engine_cell_wall_seconds", "wall time per evaluated sweep cell"
        )
        for i, cell in enumerate(cells):
            self._telemetry.emit(
                "cell",
                run_id=run_id,
                index=i,
                kind=cell.kind,
                key=keys[i],
                source=sources[i],
                wall_s=walls[i],
            )
            span.event(
                "engine.cell",
                index=i, kind=cell.kind, key=keys[i],
                source=sources[i], wall_s=walls[i],
            )
            wall_hist.observe(walls[i], kind=cell.kind, source=sources[i])
            if sources[i] == "computed":
                add_sample(f"evaluator:{cell.kind}", walls[i])
        self._telemetry.emit(
            "run_end",
            run_id=run_id,
            jobs=self.jobs,
            n_cells=len(cells),
            cache_hits=n_hits,
            cache_misses=len(misses),
            resumed=n_resumed,
            elapsed_s=elapsed,
            busy_s=busy,
            worker_utilization=(
                busy / (elapsed * self.jobs) if elapsed > 0 else 0.0
            ),
        )
        self.stats.merge_run(n_hits, len(misses), n_resumed, elapsed, busy)
        reg = metrics()
        reg.counter("repro_engine_runs_total", "engine map() batches").inc()
        reg.counter(
            "repro_engine_cache_hits_total", "sweep cells served from cache"
        ).inc(n_hits)
        reg.counter(
            "repro_engine_cache_misses_total", "sweep cells computed"
        ).inc(len(misses))
        if n_resumed:
            reg.counter(
                "repro_engine_journal_resumed_total",
                "sweep cells served from a checkpoint journal on resume",
            ).inc(n_resumed)
        if self.stats.cells:
            reg.gauge(
                "repro_engine_cache_hit_ratio",
                "lifetime cache-hit ratio of this engine",
            ).set(self.stats.cache_hits / self.stats.cells)
        span.set(
            cache_hits=n_hits, cache_misses=len(misses), resumed=n_resumed,
            elapsed_s=elapsed, busy_s=busy,
        )
        if report is not None and (
            report.retries or report.pool_respawns or report.timeouts
            or report.serial_fallback
        ):
            span.set(
                retries=report.retries,
                timeouts=report.timeouts,
                lost_chunks=report.lost_chunks,
                pool_respawns=report.pool_respawns,
                serial_fallback=report.serial_fallback,
            )
        return payloads  # type: ignore[return-value]

    def _apply_cache_corruption_faults(self, cells: list[SweepCell]) -> None:
        """Fire the fault plan's ``corrupt_cache`` events (tests/drills)."""
        if self.fault_plan is None or self._cache is None:
            return
        for idx in self.fault_plan.corrupt_targets():
            if idx < len(cells):
                corrupt_cache_entry(self._cache, self._cache.key(cells[idx]))

    def _compute(self, cells, misses, keys, payloads, walls, span, deadline_s=None):
        """Evaluate the cache misses resiliently, persisting as they land.

        Returns the executor's :class:`~repro.resilience.ExecutionReport`.
        Cache and journal writes happen in the per-chunk callback, so an
        interrupted run keeps everything that finished.
        """
        policy = self._retry
        if deadline_s is not None:
            # Clamp the per-chunk timeout to the caller's remaining
            # budget (pooled mode only; the serial path has no way to
            # interrupt an evaluation already in flight).
            timeout = policy.timeout_s
            clamped = (
                deadline_s if timeout is None else min(timeout, deadline_s)
            )
            policy = replace(policy, timeout_s=max(clamped, 0.001))
        chunk_size = self.chunk_size or max(
            1, math.ceil(len(misses) / (self.jobs * CHUNKS_PER_WORKER))
        )
        index_chunks = [
            misses[lo : lo + chunk_size]
            for lo in range(0, len(misses), chunk_size)
        ]
        chunks = [[cells[g] for g in group] for group in index_chunks]

        def on_chunk_done(chunk_index: int, pairs) -> None:
            for g, (payload, wall) in zip(index_chunks[chunk_index], pairs):
                payloads[g] = payload
                walls[g] = wall
                if self._cache is not None:
                    self._cache.store(keys[g], cells[g], payload)
                if self._journal is not None:
                    self._journal.record(keys[g], cells[g], payload, wall)

        # Cross-process tracing: pooled workers cannot see this
        # process's tracer, so hand them a TraceContext anchored on the
        # open engine.map span; they write span shards to a scratch
        # directory that is stitched into the parent trace afterwards.
        # The serial path (jobs==1 or a single chunk) needs none of
        # this — its spans reach the active tracer in-process.
        tracer = obs.current_tracer()
        shard_dir: str | None = None
        trace_ctx: TraceContext | None = None
        # Remote dispatch always shards (the workers are other hosts);
        # the local pool only when it actually fans out.
        dispatching = self.dispatcher is not None and self.dispatcher.ready()
        if tracer.enabled and (
            dispatching or (self.jobs > 1 and len(chunks) > 1)
        ):
            shard_dir = tempfile.mkdtemp(prefix="repro-trace-shards-")
            trace_ctx = TraceContext(trace_id=tracer.trace_id, parent_id=span.id)

        # The executor seam: a dispatch plane with healthy workers
        # supplies a RemoteExecutor; otherwise (including mid-sweep
        # degradation handled inside the plane) the local resilient
        # pool runs the batch.  When no dispatcher is attached this is
        # a single None check — the workers-off hot path is unchanged.
        executor = None
        if self.dispatcher is not None:
            executor = self.dispatcher.executor(
                jobs=self.jobs,
                policy=policy,
                fault_plan=self.fault_plan,
                span=span,
                trace_ctx=trace_ctx,
                shard_dir=shard_dir,
            )
        if executor is None:
            executor = ResilientExecutor(
                jobs=self.jobs,
                policy=policy,
                fault_plan=self.fault_plan,
                span=span,
                trace_ctx=trace_ctx,
                shard_dir=shard_dir,
            )
        try:
            executor.run(chunks, on_chunk_done=on_chunk_done)
        finally:
            if shard_dir is not None:
                stitched = stitch_shards(shard_dir, anchors={span.id})
                tracer.adopt(stitched.records)
                span.set(
                    worker_shards=stitched.shards,
                    stitched_spans=len(stitched.records),
                    shard_orphans=stitched.orphans,
                )
                shutil.rmtree(shard_dir, ignore_errors=True)
        return executor.report


_DEFAULT_ENGINE: ExperimentEngine | None = None


def default_engine() -> ExperimentEngine:
    """The shared serial engine harnesses fall back to.

    No cache, no telemetry, no pool — exactly the pre-engine behaviour,
    which keeps every harness's default results and signatures stable.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine(jobs=1)
    return _DEFAULT_ENGINE
