"""The parallel experiment engine.

:class:`ExperimentEngine` evaluates a batch of sweep cells through three
layers, in order:

1. **cache** — cells whose content-address is already on disk are
   served without computing anything;
2. **fan-out** — the remaining cells are split into deterministic
   contiguous chunks and evaluated on a ``ProcessPoolExecutor`` using
   the ``spawn`` start method (the portable one — nothing in a cell may
   rely on forked state);
3. **assembly** — payloads are reassembled strictly in submission
   order, so the result list is independent of worker scheduling and a
   ``jobs=1`` run is bitwise identical to a ``jobs=N`` run.

``jobs=1`` short-circuits the pool entirely and evaluates inline, which
is also the fallback while debugging worker-side failures.  Telemetry
(one JSONL event per cell plus run bracketing) and hit/miss counters are
recorded on every run; see :mod:`repro.engine.telemetry`.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Sequence

from repro.engine.cache import ResultCache
from repro.engine.cells import SweepCell, evaluate_chunk
from repro.engine.telemetry import TelemetryLog, new_run_id
from repro.errors import EngineError
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.obs.profile import add_sample, profiled

#: Chunks submitted per worker: small enough to load-balance uneven
#: cells, large enough to amortise pickling and per-future overhead.
CHUNKS_PER_WORKER: int = 4


@dataclass
class EngineStats:
    """Aggregate counters over every ``map`` call of one engine."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    busy_s: float = 0.0
    runs: int = 0

    def merge_run(self, hits: int, misses: int, elapsed: float, busy: float) -> None:
        """Fold one run's counters in."""
        self.cells += hits + misses
        self.cache_hits += hits
        self.cache_misses += misses
        self.elapsed_s += elapsed
        self.busy_s += busy
        self.runs += 1


@dataclass
class ExperimentEngine:
    """Runs sweep cells with optional parallelism, caching and telemetry.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` evaluates inline (no pool).
    cache_dir:
        Directory of the content-addressed result cache; ``None``
        disables caching entirely.
    use_cache:
        ``False`` (the CLI's ``--no-cache``) keeps the directory
        configured but neither reads nor writes it.
    telemetry:
        Path of the JSONL event log; ``None`` disables persistence
        (counters in :attr:`stats` are kept either way).
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    use_cache: bool = True
    telemetry: str | Path | None = None
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {self.jobs}")
        self._cache = (
            ResultCache(self.cache_dir)
            if self.cache_dir is not None and self.use_cache
            else None
        )
        self._telemetry = TelemetryLog(self.telemetry)

    # -- cache passthrough ------------------------------------------------

    @property
    def cache(self) -> ResultCache | None:
        """The active result cache, if any."""
        return self._cache

    def invalidate_cache(self, kind: str | None = None) -> int:
        """Drop cached results (all, or one cell kind); returns count."""
        if self._cache is None:
            return 0
        return self._cache.invalidate(kind)

    # -- execution --------------------------------------------------------

    def run_cell(self, cell: SweepCell) -> dict:
        """Evaluate a single cell (convenience wrapper over :meth:`map`)."""
        return self.map([cell])[0]

    def map(self, cells: Sequence[SweepCell]) -> list[dict]:
        """Evaluate every cell, returning payloads in submission order."""
        cells = list(cells)
        run_id = new_run_id()
        with obs.span(
            "engine.map", level="engine",
            run_id=run_id, jobs=self.jobs, n_cells=len(cells),
            cache_enabled=self._cache is not None,
        ) as span, profiled("engine.map"):
            return self._map_traced(cells, run_id, span)

    def _map_traced(self, cells: list[SweepCell], run_id: str, span) -> list[dict]:
        start = time.perf_counter()
        self._telemetry.emit(
            "run_start",
            run_id=run_id,
            jobs=self.jobs,
            n_cells=len(cells),
            cache_enabled=self._cache is not None,
            cache_dir=str(self.cache_dir) if self.cache_dir is not None else None,
        )

        payloads: list[dict | None] = [None] * len(cells)
        walls: list[float] = [0.0] * len(cells)
        sources: list[str] = ["computed"] * len(cells)
        keys: list[str | None] = [None] * len(cells)
        misses: list[int] = []

        for i, cell in enumerate(cells):
            if self._cache is None:
                misses.append(i)
                continue
            key = self._cache.key(cell)
            keys[i] = key
            probe_start = time.perf_counter()
            hit = self._cache.load(key)
            if hit is None:
                misses.append(i)
            else:
                payloads[i] = hit
                walls[i] = time.perf_counter() - probe_start
                sources[i] = "cache"

        if misses:
            for idx, (payload, wall) in zip(
                misses, self._evaluate([cells[i] for i in misses])
            ):
                payloads[idx] = payload
                walls[idx] = wall
                if self._cache is not None:
                    self._cache.store(keys[idx], cells[idx], payload)

        elapsed = time.perf_counter() - start
        busy = sum(walls[i] for i in misses)
        n_hits = len(cells) - len(misses)
        wall_hist = metrics().histogram(
            "repro_engine_cell_wall_seconds", "wall time per evaluated sweep cell"
        )
        for i, cell in enumerate(cells):
            self._telemetry.emit(
                "cell",
                run_id=run_id,
                index=i,
                kind=cell.kind,
                key=keys[i],
                source=sources[i],
                wall_s=walls[i],
            )
            span.event(
                "engine.cell",
                index=i, kind=cell.kind, key=keys[i],
                source=sources[i], wall_s=walls[i],
            )
            wall_hist.observe(walls[i], kind=cell.kind, source=sources[i])
            if sources[i] == "computed":
                add_sample(f"evaluator:{cell.kind}", walls[i])
        self._telemetry.emit(
            "run_end",
            run_id=run_id,
            jobs=self.jobs,
            n_cells=len(cells),
            cache_hits=n_hits,
            cache_misses=len(misses),
            elapsed_s=elapsed,
            busy_s=busy,
            worker_utilization=(
                busy / (elapsed * self.jobs) if elapsed > 0 else 0.0
            ),
        )
        self.stats.merge_run(n_hits, len(misses), elapsed, busy)
        reg = metrics()
        reg.counter("repro_engine_runs_total", "engine map() batches").inc()
        reg.counter(
            "repro_engine_cache_hits_total", "sweep cells served from cache"
        ).inc(n_hits)
        reg.counter(
            "repro_engine_cache_misses_total", "sweep cells computed"
        ).inc(len(misses))
        if self.stats.cells:
            reg.gauge(
                "repro_engine_cache_hit_ratio",
                "lifetime cache-hit ratio of this engine",
            ).set(self.stats.cache_hits / self.stats.cells)
        span.set(
            cache_hits=n_hits, cache_misses=len(misses),
            elapsed_s=elapsed, busy_s=busy,
        )
        return payloads  # type: ignore[return-value]

    def _evaluate(self, cells: list[SweepCell]) -> list[tuple[dict, float]]:
        """Compute payloads for cache misses, inline or fanned out."""
        if self.jobs == 1 or len(cells) == 1:
            return evaluate_chunk(cells)
        chunk_size = max(1, math.ceil(len(cells) / (self.jobs * CHUNKS_PER_WORKER)))
        chunks = [
            cells[lo : lo + chunk_size] for lo in range(0, len(cells), chunk_size)
        ]
        workers = min(self.jobs, len(chunks))
        results: list[tuple[dict, float]] = []
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as pool:
            futures = [pool.submit(evaluate_chunk, chunk) for chunk in chunks]
            for future in futures:  # submission order == assembly order
                results.extend(future.result())
        return results


_DEFAULT_ENGINE: ExperimentEngine | None = None


def default_engine() -> ExperimentEngine:
    """The shared serial engine harnesses fall back to.

    No cache, no telemetry, no pool — exactly the pre-engine behaviour,
    which keeps every harness's default results and signatures stable.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine(jobs=1)
    return _DEFAULT_ENGINE
