"""Degraded-hardware robustness: faults, noisy sensors, guardrails.

This package makes the adaptive-control stack survivable when the
modeled hardware is imperfect: increments can fail
(:class:`HardwareFaultModel`), performance counters can lie
(:class:`NoisySensor`), and the controller/manager grow guardrails
(:class:`ThrashDetector`, :class:`TpiWatchdog`) that keep adaptation
from amplifying either problem.  See ``docs/robustness.md``.
"""

from repro.robust.faults import HardwareFaultModel, UnitFault
from repro.robust.guardrails import (
    GuardrailConfig,
    ThrashDetector,
    TpiWatchdog,
    WatchdogVerdict,
)
from repro.robust.sensors import NoisySensor, SensorNoiseConfig

__all__ = [
    "GuardrailConfig",
    "HardwareFaultModel",
    "NoisySensor",
    "SensorNoiseConfig",
    "ThrashDetector",
    "TpiWatchdog",
    "UnitFault",
    "WatchdogVerdict",
]
