"""Controller and manager guardrails for degraded, noisy machines.

Two failure modes appear once sensors are noisy and increments can die:

* **Thrashing** — noise makes two configurations' estimates cross
  repeatedly, and the controller burns its gains on clock-switch
  pauses.  :class:`ThrashDetector` watches the switch cadence and, past
  a threshold, locks the home configuration for a cooldown period (the
  hysteresis margin already in
  :class:`~repro.core.controller.ControllerConfig` handles small noise;
  the detector is the backstop for persistent, structured noise).
* **Mis-predicted selections** — a noisy candidate evaluation makes the
  Configuration Manager pick a configuration whose *achieved* TPI is
  far worse than predicted.  :class:`TpiWatchdog` compares achieved
  against predicted and, past a tolerance, names the best-known-safe
  configuration to fall back to — always a currently-reachable one, and
  only when it has actually measured something better (a fallback that
  might make things worse is not a recovery).

Both guardrails emit ``robust.*`` trace events and ``repro_robust_*``
metrics through the standard observability layer.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.errors import ConfigurationError, SensorError
from repro.obs import trace as obs
from repro.obs.metrics import metrics


@dataclass(frozen=True)
class GuardrailConfig:
    """Tuning of the online-controller guardrails."""

    #: Sliding window (intervals) over which switches are counted.
    thrash_window: int = 16
    #: Home switches within the window that count as thrashing.
    thrash_threshold: int = 4
    #: Intervals the home configuration is locked after a thrash.
    cooldown: int = 16

    def __post_init__(self) -> None:
        if self.thrash_window < 2:
            raise ConfigurationError("thrash_window must be >= 2")
        if self.thrash_threshold < 2:
            raise ConfigurationError("thrash_threshold must be >= 2")
        if self.cooldown < 1:
            raise ConfigurationError("cooldown must be >= 1")


class ThrashDetector:
    """Counts home switches in a sliding window; locks past a threshold."""

    def __init__(self, config: GuardrailConfig) -> None:
        self.config = config
        self._switches: deque[int] = deque()
        self._locked_until = -1
        self._n_locks = 0

    @property
    def n_locks(self) -> int:
        """How many thrash locks have been imposed so far."""
        return self._n_locks

    def locked(self, interval: int) -> bool:
        """Whether switching is currently suppressed."""
        return interval <= self._locked_until

    def record_switch(self, interval: int) -> None:
        """Note one home-switch attempt; may impose a lock.

        Called when the controller is about to commit a home change.
        If the window now holds ``thrash_threshold`` switches, switching
        locks for ``cooldown`` intervals (suppressing the attempt that
        tripped the threshold) and the window resets.
        """
        cfg = self.config
        self._switches.append(interval)
        floor = interval - cfg.thrash_window
        while self._switches and self._switches[0] <= floor:
            self._switches.popleft()
        if len(self._switches) >= cfg.thrash_threshold:
            self._locked_until = interval + cfg.cooldown
            self._n_locks += 1
            self._switches.clear()
            obs.event(
                "robust.thrash_lock", interval=interval,
                until=self._locked_until, cooldown=cfg.cooldown,
            )
            metrics().counter(
                "repro_robust_thrash_locks_total",
                "thrash locks imposed by the controller guardrail",
            ).inc()


@dataclass(frozen=True)
class WatchdogVerdict:
    """Outcome of one watchdog check."""

    regression: bool
    fallback: Hashable | None  # configuration to fall back to, if any
    predicted_tpi_ns: float
    achieved_tpi_ns: float


class TpiWatchdog:
    """Flags selections whose achieved TPI belies their prediction.

    Keeps, per ``(process, structure)``, the best configuration by
    *achieved* TPI — the best-known-safe fallback target.  A check
    whose achieved TPI exceeds ``predicted * (1 + tolerance)`` is a
    regression; the watchdog proposes a fallback only when a strictly
    better-measured, currently-reachable configuration exists.
    """

    def __init__(self, tolerance: float = 0.15) -> None:
        if not 0.0 <= tolerance:
            raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = tolerance
        #: (process, structure) -> {configuration: best achieved TPI}
        self._achieved: dict[tuple[str, str], dict[Hashable, float]] = {}

    def achieved_history(
        self, process: str, structure: str
    ) -> dict[Hashable, float]:
        """Best achieved TPI per configuration seen so far."""
        return dict(self._achieved.get((process, structure), {}))

    def record(
        self, process: str, structure: str, configuration: Hashable,
        achieved_tpi_ns: float,
    ) -> None:
        """Remember one configuration's achieved TPI (keep the best)."""
        if not math.isfinite(achieved_tpi_ns) or achieved_tpi_ns <= 0:
            raise SensorError(
                f"achieved TPI must be finite and positive, got "
                f"{achieved_tpi_ns!r}"
            )
        history = self._achieved.setdefault((process, structure), {})
        best = history.get(configuration)
        if best is None or achieved_tpi_ns < best:
            history[configuration] = achieved_tpi_ns

    def check(
        self,
        process: str,
        structure: str,
        configuration: Hashable,
        predicted_tpi_ns: float,
        achieved_tpi_ns: float,
        reachable: tuple[Hashable, ...],
    ) -> WatchdogVerdict:
        """Record the outcome and judge it against the prediction.

        ``reachable`` is the structure's *current*
        ``configurations()`` — the fallback is guaranteed to come from
        it (and to have measured strictly better than what just ran).
        """
        self.record(process, structure, configuration, achieved_tpi_ns)
        regression = achieved_tpi_ns > predicted_tpi_ns * (1.0 + self.tolerance)
        fallback: Hashable | None = None
        if regression:
            history = self._achieved.get((process, structure), {})
            candidates = {
                cfg: tpi
                for cfg, tpi in history.items()
                if cfg in reachable
                and cfg != configuration
                and tpi < achieved_tpi_ns
            }
            if candidates:
                fallback = min(candidates, key=candidates.__getitem__)
        return WatchdogVerdict(
            regression=regression,
            fallback=fallback,
            predicted_tpi_ns=predicted_tpi_ns,
            achieved_tpi_ns=achieved_tpi_ns,
        )
