"""Noisy, lossy performance-monitoring sensors.

The paper's adaptive control assumes the monitoring hardware reports
exact per-interval TPI.  Real counters are noisy (sampling jitter,
multiplexed counter sets), occasionally *stuck* (a latched register
replaying a stale value), and occasionally *dropped* (the interval ends
before the counter set is read out).  :class:`NoisySensor` models all
three over any TPI feed — typically between the simulated truth and a
:class:`~repro.core.monitor.PerformanceMonitor` /
:class:`~repro.core.controller.OnlineController` — deterministically:
every perturbation is a pure function of ``(seed, interval)``, hashed
with SHA-256 exactly like :class:`~repro.robust.faults.HardwareFaultModel`
draws, so the same seed reproduces the same corrupted measurement
stream byte-for-byte.

Validation happens at the sensor boundary: a non-finite or non-positive
*true* TPI is a simulator bug, rejected with
:class:`~repro.errors.SensorError` before it can enter the control
loop.  (The monitor and controller validate again on their side — the
paranoia is deliberate, both layers can be used independently.)
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, SensorError
from repro.obs import trace as obs
from repro.obs.metrics import metrics


@dataclass(frozen=True)
class SensorNoiseConfig:
    """Tuning of one noisy sensor channel."""

    #: Multiplicative uniform noise half-width: a reading is scaled by
    #: ``1 + noise_fraction * u`` with ``u ~ U[-1, 1)``.
    noise_fraction: float = 0.0
    #: Probability an interval's sample is dropped entirely.
    dropout_rate: float = 0.0
    #: Probability the counter latches and replays its last delivered
    #: value for the next ``stuck_duration`` intervals.
    stuck_rate: float = 0.0
    #: How many intervals a stuck counter stays stuck.
    stuck_duration: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise_fraction < 1.0:
            raise ConfigurationError(
                f"noise_fraction must be in [0, 1), got {self.noise_fraction}"
            )
        for name in ("dropout_rate", "stuck_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.stuck_duration < 1:
            raise ConfigurationError(
                f"stuck_duration must be >= 1, got {self.stuck_duration}"
            )

    @property
    def is_clean(self) -> bool:
        """Whether this configuration perturbs nothing."""
        return (
            self.noise_fraction == 0.0
            and self.dropout_rate == 0.0
            and self.stuck_rate == 0.0
        )


def _draw(seed: int, interval: int, channel: str) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(
        f"{seed}:{interval}:{channel}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class NoisySensor:
    """Deterministically corrupts a per-interval TPI feed.

    :meth:`read` maps a true measurement to what the monitoring
    hardware actually delivers: the value with multiplicative noise,
    a stale latched value, or ``None`` for a dropped sample.
    """

    def __init__(self, config: SensorNoiseConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)
        # cached: the clean fast path sits on the controller's
        # per-interval hot loop (config is frozen, so this cannot drift)
        self._clean = config.is_clean
        self._stuck_until = -1
        self._stuck_value: float | None = None
        self._last_delivered: float | None = None

    def read(self, interval: int, tpi_ns: float) -> float | None:
        """What the sensor reports for ``interval`` given the truth.

        Returns ``None`` for a dropped sample.  Raises
        :class:`~repro.errors.SensorError` if the *input* is not a
        finite positive number — garbage in is a bug, not noise.
        """
        try:
            if not tpi_ns > 0 or not math.isfinite(tpi_ns):
                raise SensorError(
                    f"sensor fed non-finite/non-positive TPI {tpi_ns!r}"
                )
        except TypeError:
            raise SensorError(f"sensor fed non-numeric TPI {tpi_ns!r}") from None
        if self._clean:
            value = float(tpi_ns)
            self._last_delivered = value
            return value
        cfg = self.config

        if cfg.dropout_rate and _draw(self.seed, interval, "drop") < cfg.dropout_rate:
            obs.event("robust.sensor_dropout", interval=interval)
            metrics().counter(
                "repro_robust_sensor_dropouts_total",
                "interval samples dropped by the noisy sensor",
            ).inc()
            return None

        if interval <= self._stuck_until and self._stuck_value is not None:
            obs.event(
                "robust.sensor_stuck", interval=interval,
                value_ns=self._stuck_value,
            )
            metrics().counter(
                "repro_robust_sensor_stuck_total",
                "interval samples replaced by a stuck counter value",
            ).inc()
            return self._stuck_value

        value = float(tpi_ns)
        if cfg.noise_fraction:
            u = 2.0 * _draw(self.seed, interval, "noise") - 1.0
            value *= 1.0 + cfg.noise_fraction * u

        if cfg.stuck_rate and _draw(self.seed, interval, "stick") < cfg.stuck_rate:
            self._stuck_until = interval + cfg.stuck_duration
            self._stuck_value = value
            obs.event(
                "robust.sensor_stuck", interval=interval, value_ns=value,
                until=self._stuck_until,
            )
            metrics().counter(
                "repro_robust_sensor_stuck_total",
                "interval samples replaced by a stuck counter value",
            ).inc()

        self._last_delivered = value
        return value

    def read_required(
        self, interval: int, tpi_ns: float, max_retries: int = 8
    ) -> float:
        """A reading that must produce a number (profiling/candidate
        evaluation re-samples until the readout succeeds).

        Dropped samples are retried at successive interval indices; if
        every retry drops too, the last delivered value stands in, and
        failing that the truth is returned (the profiler can always
        fall back to a longer measurement).
        """
        for offset in range(max_retries):
            value = self.read(interval + offset, tpi_ns)
            if value is not None:
                return value
        if self._last_delivered is not None:
            return self._last_delivered
        return float(tpi_ns)
