"""Deterministic increment-fault injection for the modeled hardware.

The resilience layer (:mod:`repro.resilience`) makes the *experiment
execution* fault-tolerant; this module makes the *modeled adaptive
hardware* degradable.  A :class:`HardwareFaultModel` is a fully explicit,
seedable schedule of :class:`UnitFault` events — "cache increment 11
fails at reset", "queue segment 3 fails at interval 40" — that it
applies to :class:`~repro.core.structure.ComplexityAdaptiveStructure`
instances via their capability mask (:meth:`fail_unit`).

Unit indexing follows the structure's ascending configuration order:
unit ``j`` is the increment that the ``j``-th configuration adds on top
of the ``(j-1)``-th, so failing it masks every configuration at position
``>= j``.  Unit 0 (the minimal increment) is never drawn by the seeded
generator — a CAPs machine whose smallest configuration is dead is not
degraded, it is bricked, and that regime is out of scope.

Like :class:`repro.resilience.FaultPlan`, seeded draws hash
``(seed, structure, unit)`` with SHA-256 so the same seed yields the
same fault set across processes and Python versions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.structure import ComplexityAdaptiveStructure
from repro.errors import ConfigurationError, DegradedHardwareError


@dataclass(frozen=True)
class UnitFault:
    """One scheduled hardware-increment failure.

    Attributes
    ----------
    structure:
        Name of the adaptive structure the unit belongs to.
    unit:
        Index into the structure's ascending configuration order
        (``>= 1``; unit 0 must stay functional).
    at_interval:
        When the fault manifests: 0 means present at reset, ``t > 0``
        means the unit dies at the start of adaptation interval ``t``.
    """

    structure: str
    unit: int
    at_interval: int = 0

    def __post_init__(self) -> None:
        if self.unit < 1:
            raise DegradedHardwareError(
                f"{self.structure}: unit must be >= 1 (unit 0 is the minimal "
                f"increment and must stay functional), got {self.unit}"
            )
        if self.at_interval < 0:
            raise ConfigurationError(
                f"fault interval must be >= 0, got {self.at_interval}"
            )


def _draw(seed: int, structure: str, unit: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(f"{seed}:{structure}:{unit}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class HardwareFaultModel:
    """A deterministic, seedable schedule of increment faults.

    Build one explicitly from :class:`UnitFault` events, or draw one
    with :meth:`seeded` from per-structure failure fractions.  Apply it
    to live structures with :meth:`apply` (reset-time faults) and
    :meth:`apply_due` (mid-run faults).
    """

    def __init__(self, faults: Iterable[UnitFault] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self.faults = tuple(faults)
        seen: set[tuple[str, int]] = set()
        for fault in self.faults:
            key = (fault.structure, fault.unit)
            if key in seen:
                raise ConfigurationError(
                    f"duplicate fault for {fault.structure} unit {fault.unit}"
                )
            seen.add(key)

    @classmethod
    def seeded(
        cls,
        seed: int,
        structures: Mapping[str, int],
        fail_fraction: float,
        mid_run_fraction: float = 0.0,
        mid_run_interval: int = 1,
    ) -> "HardwareFaultModel":
        """Draw a fault set that is a pure function of ``seed``.

        ``structures`` maps structure name to its designed unit count
        (``len(_all_configurations())``).  Each structure loses
        ``round(fail_fraction * (n_units - 1))`` of its non-minimal
        units — the ones with the smallest hash draws, so growing
        ``fail_fraction`` only ever *adds* faults.  A ``mid_run_fraction``
        of the drawn faults (again by hash order) manifests at
        ``mid_run_interval`` instead of at reset.
        """
        if not 0.0 <= fail_fraction <= 1.0:
            raise ConfigurationError(
                f"fail_fraction must be in [0, 1], got {fail_fraction}"
            )
        if not 0.0 <= mid_run_fraction <= 1.0:
            raise ConfigurationError(
                f"mid_run_fraction must be in [0, 1], got {mid_run_fraction}"
            )
        if mid_run_interval < 1:
            raise ConfigurationError(
                f"mid_run_interval must be >= 1, got {mid_run_interval}"
            )
        faults: list[UnitFault] = []
        for name in sorted(structures):
            n_units = int(structures[name])
            if n_units < 1:
                raise ConfigurationError(
                    f"{name}: structure needs at least one unit, got {n_units}"
                )
            candidates = sorted(
                range(1, n_units), key=lambda u: (_draw(seed, name, u), u)
            )
            n_fail = round(fail_fraction * (n_units - 1))
            chosen = candidates[:n_fail]
            n_mid = round(mid_run_fraction * len(chosen))
            for rank, unit in enumerate(chosen):
                at = mid_run_interval if rank < n_mid else 0
                faults.append(UnitFault(structure=name, unit=unit, at_interval=at))
        return cls(faults=faults, seed=seed)

    def faults_for(self, structure: str) -> tuple[UnitFault, ...]:
        """Every scheduled fault of one structure, reset-time first."""
        return tuple(
            sorted(
                (f for f in self.faults if f.structure == structure),
                key=lambda f: (f.at_interval, f.unit),
            )
        )

    def apply(self, cas: ComplexityAdaptiveStructure) -> tuple[UnitFault, ...]:
        """Apply the reset-time (``at_interval == 0``) faults to ``cas``.

        Returns the faults applied.  Faults naming units the structure
        does not have are rejected by :meth:`fail_unit` — a plan must
        match the hardware it is injected into.
        """
        applied = tuple(
            f for f in self.faults_for(cas.name) if f.at_interval == 0
        )
        for fault in applied:
            cas.fail_unit(fault.unit)
        return applied

    def apply_due(
        self, cas: ComplexityAdaptiveStructure, interval: int
    ) -> tuple[UnitFault, ...]:
        """Apply the faults that manifest exactly at ``interval``."""
        due = tuple(
            f for f in self.faults_for(cas.name) if f.at_interval == interval
        )
        for fault in due:
            cas.fail_unit(fault.unit)
        return due

    def mid_run_intervals(self, structure: str) -> tuple[int, ...]:
        """Sorted distinct intervals at which mid-run faults manifest."""
        return tuple(
            sorted(
                {
                    f.at_interval
                    for f in self.faults_for(structure)
                    if f.at_interval > 0
                }
            )
        )
