"""Bakoglu optimal repeater insertion.

Inserting ``k`` repeaters of size ``h`` (relative to a minimum inverter)
into a wire of total resistance ``R_int`` and capacitance ``C_int``
breaks the quadratic RC delay into ``k`` short segments.  Bakoglu and
Meindl [4] derive the optimum:

* ``k_opt = sqrt(0.4 * R_int * C_int / (0.7 * R0 * C0))``
* ``h_opt = sqrt(R0 * C_int / (R_int * C0))``
* ``T_opt = 2.5 * sqrt(R0 * C0 * R_int * C_int)``

where ``R0 * C0`` is the characteristic RC product of a minimum
repeater.  Because ``R_int = r * L`` and ``C_int = c * L``, the optimally
buffered delay grows **linearly** with wire length::

    T_opt(L) = 2.5 * sqrt(R0 * C0 * r * c) * L

and because ``R0 * C0`` scales linearly with feature size, buffered wires
get faster as technology shrinks even though the bare wire does not —
the effect the paper's Figures 1 and 2 illustrate.  On top of ``T_opt``
we charge the intrinsic delay of driving into the repeated line (two
characteristic RC products), which slightly penalises buffering for very
short wires and produces the crossover behaviour seen in the figures.

Segment isolation is the property the CAP architecture exploits: every
buffered segment's delay is independent of how many further segments
follow it, so elements can be disabled (and the clock retargeted) without
redesigning the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TimingModelError
from repro.tech.parameters import TechnologyParameters
from repro.tech.wires import unbuffered_wire_delay_ns
from repro.units import ps

#: Fixed overhead of entering a repeated line, in characteristic repeater
#: RC products (the driver stage plus the first repeater's intrinsic
#: delay).
DRIVE_IN_OVERHEAD_RC: float = 2.0


@dataclass(frozen=True)
class RepeaterDesign:
    """Result of optimally buffering one wire.

    Attributes
    ----------
    length_mm:
        Total wire length.
    n_repeaters:
        Optimal repeater count ``k_opt`` (rounded up, at least 1).
    repeater_size:
        Optimal repeater size ``h_opt`` relative to a minimum inverter.
    delay_ns:
        End-to-end buffered delay including drive-in overhead.
    segment_delay_ns:
        Delay of one repeated segment; independent of the number of
        downstream segments (the isolation property).
    """

    length_mm: float
    n_repeaters: int
    repeater_size: float
    delay_ns: float
    segment_delay_ns: float


def _per_mm_delay_ps(tech: TechnologyParameters) -> float:
    """Optimally buffered wire delay per millimetre, in ps."""
    return 2.5 * math.sqrt(tech.repeater_rc_ps * tech.wire_rc_ps_per_mm2)


def buffered_wire_delay_ns(length_mm: float, tech: TechnologyParameters) -> float:
    """Delay (ns) of an optimally repeated wire of ``length_mm``.

    Linear in length, and scales with the square root of the repeater RC
    product (hence improves as feature size shrinks).
    """
    if length_mm < 0:
        raise TimingModelError(f"wire length must be non-negative, got {length_mm}")
    if length_mm == 0:
        return 0.0
    overhead_ps = DRIVE_IN_OVERHEAD_RC * tech.repeater_rc_ps
    return ps(overhead_ps + _per_mm_delay_ps(tech) * length_mm)


def optimal_repeaters(length_mm: float, tech: TechnologyParameters) -> RepeaterDesign:
    """Compute the full Bakoglu design point for a wire.

    >>> from repro.tech import technology
    >>> d = optimal_repeaters(10.0, technology(0.18))
    >>> d.n_repeaters >= 1 and d.delay_ns > 0
    True
    """
    if length_mm <= 0:
        raise TimingModelError(f"wire length must be positive, got {length_mm}")
    r_int_c_int_ps = tech.wire_rc_ps_per_mm2 * length_mm * length_mm
    k_opt = math.sqrt(0.4 * r_int_c_int_ps / (0.7 * tech.repeater_rc_ps))
    n_repeaters = max(1, math.ceil(k_opt))
    # h_opt = sqrt(R0 * C_int / (R_int * C0)); with R0/C0 folded into the
    # characteristic product we report the classic dimensionless form
    # using a nominal R0/C0 split of 1 kOhm / tau0 per kOhm.
    r0_ohm = 1000.0
    c0_pf = tech.repeater_rc_ps / r0_ohm
    c_int_pf = tech.wire_c_pf_per_mm * length_mm
    r_int_ohm = tech.wire_r_ohm_per_mm * length_mm
    h_opt = math.sqrt(r0_ohm * c_int_pf / (r_int_ohm * c0_pf))
    delay = buffered_wire_delay_ns(length_mm, tech)
    segment = (delay - ps(DRIVE_IN_OVERHEAD_RC * tech.repeater_rc_ps)) / n_repeaters
    return RepeaterDesign(
        length_mm=length_mm,
        n_repeaters=n_repeaters,
        repeater_size=h_opt,
        delay_ns=delay,
        segment_delay_ns=segment,
    )


def buffering_is_beneficial(length_mm: float, tech: TechnologyParameters) -> bool:
    """True when optimal buffering beats the bare distributed-RC wire."""
    return buffered_wire_delay_ns(length_mm, tech) < unbuffered_wire_delay_ns(length_mm, tech)
