"""CACTI-style cache increment timing.

The paper obtains individual cache increment delays from CACTI [28]
scaled to 0.18 micron, and global address/data bus delays from Bakoglu's
optimal buffering methodology [4].  This module provides the equivalent
analytic model:

* :func:`structure_height_mm` — layout rule mapping an array's capacity
  to its bus-height (square-root-of-area rule anchored at a 2 KB
  subarray).
* :func:`cache_bus_length_mm` — total global bus length over ``n``
  stacked subarrays.
* :class:`CacheIncrementTiming` — access time of one cache increment
  (bank access plus its share of the global bus), used by
  :mod:`repro.cache.timing` to derive processor cycle times.

The bank-internal delay is a classic CACTI stage decomposition (decoder,
wordline/bitline, sense, way mux) with coefficients calibrated at the
0.25 micron reference node so that an 8 KB two-way, two-way-banked
increment accesses in ~0.42 ns at 0.18 micron — which makes the TPI
floor of the cache study land where the paper's Figure 7 puts it
(~0.21 ns for an 8-16 KB L1 at 2.67 IPC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TimingModelError
from repro.tech.parameters import (
    REFERENCE_SUBARRAY_BYTES,
    SUBARRAY_2KB_HEIGHT_MM,
    TechnologyParameters,
)
from repro.tech.repeaters import buffered_wire_delay_ns
from repro.tech.wires import unbuffered_wire_delay_ns
from repro.units import ps

#: Bank access stage coefficients, in ps at the 0.25 micron reference.
#: All scale linearly with feature size (they are transistor dominated).
BANK_BASE_PS: float = 300.0
BANK_DECODER_PS_PER_INDEX_BIT: float = 37.0
BANK_BITLINE_PS_PER_SQRT_2KB: float = 20.0
BANK_WAYMUX_PS_PER_LOG2_WAY: float = 31.0


def structure_height_mm(capacity_bytes: float) -> float:
    """Bus-height (mm) of a RAM/CAM array of ``capacity_bytes``.

    Linear dimension grows with the square root of area, anchored at the
    2 KB reference subarray.  Heights are feature-size independent (the
    paper conservatively keeps wire lengths constant as devices shrink).

    >>> structure_height_mm(2048)
    0.75
    """
    if capacity_bytes <= 0:
        raise TimingModelError(f"capacity must be positive, got {capacity_bytes}")
    return SUBARRAY_2KB_HEIGHT_MM * math.sqrt(capacity_bytes / REFERENCE_SUBARRAY_BYTES)


def cache_bus_length_mm(n_subarrays: int, subarray_bytes: int) -> float:
    """Global address/data bus length over ``n_subarrays`` stacked arrays."""
    if n_subarrays < 1:
        raise TimingModelError(f"need at least one subarray, got {n_subarrays}")
    return n_subarrays * structure_height_mm(subarray_bytes)


def best_bus_delay_ns(length_mm: float, tech: TechnologyParameters) -> float:
    """Bus delay using whichever of buffered/unbuffered is faster.

    Mirrors the paper's methodology: "whenever buffered line delays were
    faster than unbuffered delays, we used buffered values for the
    conventional cache hierarchy as well."
    """
    if length_mm == 0:
        return 0.0
    return min(
        buffered_wire_delay_ns(length_mm, tech),
        unbuffered_wire_delay_ns(length_mm, tech),
    )


@dataclass(frozen=True)
class CacheIncrementTiming:
    """Timing model for one cache increment (a small complete subcache).

    Parameters
    ----------
    bank_bytes:
        Capacity of each internal bank of the increment.
    n_banks:
        Internal banking factor (the paper's increments are two-way
        banked, so an 8 KB increment is two side-by-side 4 KB banks and
        its bus-height is that of a 4 KB array).
    associativity:
        Set associativity of each bank.
    block_bytes:
        Cache block (line) size.
    """

    bank_bytes: int
    n_banks: int = 2
    associativity: int = 2
    block_bytes: int = 32

    def __post_init__(self) -> None:
        if self.bank_bytes <= 0 or self.n_banks <= 0:
            raise TimingModelError("increment must have positive capacity and banks")
        if self.bank_bytes % (self.associativity * self.block_bytes) != 0:
            raise TimingModelError(
                f"bank of {self.bank_bytes} B cannot hold an integral number of "
                f"{self.associativity}-way sets of {self.block_bytes} B blocks"
            )

    @property
    def increment_bytes(self) -> int:
        """Total capacity of the increment."""
        return self.bank_bytes * self.n_banks

    @property
    def n_sets(self) -> int:
        """Number of sets per bank."""
        return self.bank_bytes // (self.associativity * self.block_bytes)

    @property
    def height_mm(self) -> float:
        """Bus-height of the increment (set by one internal bank)."""
        return structure_height_mm(self.bank_bytes)

    def bank_access_ns(self, tech: TechnologyParameters) -> float:
        """Bank-internal access time (decoder through way mux), in ns."""
        index_bits = math.log2(self.n_sets)
        delay_ps = (
            BANK_BASE_PS
            + BANK_DECODER_PS_PER_INDEX_BIT * index_bits
            + BANK_BITLINE_PS_PER_SQRT_2KB
            * math.sqrt(self.bank_bytes / REFERENCE_SUBARRAY_BYTES)
            + BANK_WAYMUX_PS_PER_LOG2_WAY * math.log2(max(2, self.associativity))
        )
        return ps(delay_ps * tech.gate_delay_scale())

    def access_time_ns(self, position: int, tech: TechnologyParameters) -> float:
        """Access time of the increment at 1-based bus ``position``.

        The global bus runs past ``position`` increments before reaching
        this one; with optimal repeaters each increment adds a constant
        segment delay, which is precisely the isolation property the CAP
        design exploits.
        """
        if position < 1:
            raise TimingModelError(f"increment position must be >= 1, got {position}")
        bus_mm = position * self.height_mm
        return self.bank_access_ns(tech) + best_bus_delay_ns(bus_mm, tech)
