"""Per-feature-size technology constants.

The paper's delay analysis (Section 2) rests on two first-order scaling
assumptions that we adopt verbatim:

* transistor (buffer, driver, decoder...) delays scale **linearly** with
  feature size, and
* wire delays (resistance and capacitance per unit length of the global
  busses) remain **constant** as feature size shrinks.

All constants below are calibrated at the 0.25 micron reference node so
that the model reproduces the delay ranges of the paper's Figures 1 and 2
(cache wire delay reaching ~3 ns for sixteen 2 KB subarrays, ~6 ns for
sixteen 4 KB subarrays, and ~1.3 ns for a 64-entry R10000-style integer
queue) and the buffered-versus-unbuffered crossovers called out in the
text (16 KB+ caches of 2 KB subarrays benefit at 0.18 micron; a 32-entry
queue benefits at 0.12 micron).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TimingModelError
from repro.units import feature_scale

#: Global-bus wire resistance per unit length (ohm / mm).  Constant with
#: feature size per the paper's first-order assumption.
WIRE_RESISTANCE_OHM_PER_MM: float = 146.5

#: Global-bus wire capacitance per unit length (pF / mm).
WIRE_CAPACITANCE_PF_PER_MM: float = 0.4

#: Characteristic repeater RC product (ps) at the 0.25 micron reference
#: node: the intrinsic delay scale of a minimum-sized inverter driving an
#: identical inverter.  Scales linearly with feature size.
REPEATER_RC_PS_AT_REFERENCE: float = 27.4

#: Layout rule used for all RAM/CAM array structures: the bus-height of a
#: 2 KB single-ported RAM subarray, in mm.  Heights of other array sizes
#: follow the square-root-of-area rule (linear dimension grows with the
#: square root of capacity).  Held constant across feature sizes, matching
#: the paper's conservative assumption that wire lengths do not shrink.
SUBARRAY_2KB_HEIGHT_MM: float = 0.75

#: Capacity (bytes) of the reference subarray whose height is given above.
REFERENCE_SUBARRAY_BYTES: int = 2048


@dataclass(frozen=True)
class TechnologyParameters:
    """Technology constants for one feature size.

    Attributes
    ----------
    feature_um:
        Drawn feature size in microns.
    wire_r_ohm_per_mm / wire_c_pf_per_mm:
        Global wire resistance and capacitance per mm (feature-size
        independent).
    repeater_rc_ps:
        Characteristic repeater RC product in picoseconds; linear in
        feature size.
    """

    feature_um: float
    wire_r_ohm_per_mm: float
    wire_c_pf_per_mm: float
    repeater_rc_ps: float

    @property
    def wire_rc_ps_per_mm2(self) -> float:
        """Distributed-RC product of the global wire, in ps / mm^2."""
        return self.wire_r_ohm_per_mm * self.wire_c_pf_per_mm

    def gate_delay_scale(self) -> float:
        """Scale factor for transistor delays relative to 0.25 micron."""
        return feature_scale(self.feature_um)


def technology(feature_um: float) -> TechnologyParameters:
    """Build the :class:`TechnologyParameters` for a feature size.

    Parameters
    ----------
    feature_um:
        Feature size in microns.  The model is calibrated over the range
        studied in the paper (0.1 to 0.35 micron); values outside that
        range raise :class:`~repro.errors.TimingModelError`.
    """
    if not 0.1 <= feature_um <= 0.35:
        raise TimingModelError(
            f"technology model calibrated for 0.10-0.35 micron, got {feature_um}"
        )
    return TechnologyParameters(
        feature_um=feature_um,
        wire_r_ohm_per_mm=WIRE_RESISTANCE_OHM_PER_MM,
        wire_c_pf_per_mm=WIRE_CAPACITANCE_PF_PER_MM,
        repeater_rc_ps=REPEATER_RC_PS_AT_REFERENCE * feature_scale(feature_um),
    )
