"""Unbuffered distributed-RC wire delay.

A long on-chip bus with no repeaters behaves as a distributed RC line;
its 50%-point Elmore delay is ``0.38 * r * c * L^2`` (Bakoglu).  The
quadratic growth with length is what makes large monolithic structures
slow, and what repeater insertion (:mod:`repro.tech.repeaters`) converts
into linear growth.

Following the paper's Figure 1 ("there is only one unbuffered curve as
wire delays remain constant with feature size"), the unbuffered delay
deliberately excludes any transistor driver component so that it is
feature-size independent.
"""

from __future__ import annotations

from repro.errors import TimingModelError
from repro.tech.parameters import TechnologyParameters
from repro.units import ps

#: Elmore coefficient for the 50% point of a distributed RC line.
DISTRIBUTED_RC_COEFFICIENT: float = 0.38


def unbuffered_wire_delay_ns(length_mm: float, tech: TechnologyParameters) -> float:
    """Delay (ns) of an unbuffered distributed-RC wire of ``length_mm``.

    The result depends only on the wire's per-unit-length RC product,
    which the model holds constant across feature sizes, so the same
    length gives the same delay at 0.25, 0.18 and 0.12 micron.

    >>> from repro.tech import technology
    >>> t = technology(0.18)
    >>> round(unbuffered_wire_delay_ns(1.0, t), 4) > 0
    True
    """
    if length_mm < 0:
        raise TimingModelError(f"wire length must be non-negative, got {length_mm}")
    rc = tech.wire_rc_ps_per_mm2  # ps / mm^2
    return ps(DISTRIBUTED_RC_COEFFICIENT * rc * length_mm * length_mm)
