"""Technology models: wires, repeaters, and structure timing.

This subpackage provides the first-order delay models the paper builds
on:

* :mod:`repro.tech.parameters` — per-feature-size technology constants.
* :mod:`repro.tech.wires` — unbuffered distributed-RC wire delay.
* :mod:`repro.tech.repeaters` — Bakoglu optimal repeater insertion.
* :mod:`repro.tech.cacti` — CACTI-style cache increment access/cycle time.
* :mod:`repro.tech.palacharla` — instruction queue wakeup + select delays.
"""

from repro.tech.parameters import TechnologyParameters, technology
from repro.tech.wires import unbuffered_wire_delay_ns
from repro.tech.repeaters import RepeaterDesign, buffered_wire_delay_ns, optimal_repeaters
from repro.tech.cacti import CacheIncrementTiming, cache_bus_length_mm, structure_height_mm
from repro.tech.palacharla import IssueQueueTiming, queue_bus_length_mm

__all__ = [
    "TechnologyParameters",
    "technology",
    "unbuffered_wire_delay_ns",
    "RepeaterDesign",
    "optimal_repeaters",
    "buffered_wire_delay_ns",
    "CacheIncrementTiming",
    "structure_height_mm",
    "cache_bus_length_mm",
    "IssueQueueTiming",
    "queue_bus_length_mm",
]
