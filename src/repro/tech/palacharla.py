"""Instruction queue wakeup + select delay model (after Palacharla et al.).

The paper assumes the issue queue's wakeup and selection logic is on the
critical timing path for every configuration, using Palacharla's 16-entry
wakeup delay values for 0.18 micron with operand tag lines buffered
between each group of 16 entries (the configuration increment), and a
selection tree of 4-bit priority encoders whose height — and therefore
delay — depends on the number of *enabled* entries.

This module provides:

* :func:`r10000_entry_ram_equivalent_bytes` — the area bookkeeping the
  paper performs for the R10000-style integer queue entry (52 bits of
  1-ported RAM, 12 bits of 3-ported CAM, 6 bits of 4-ported CAM; a CAM
  cell is twice a RAM cell and area grows quadratically with ports),
  which comes out to "roughly 60 bytes" per entry.
* :func:`queue_bus_length_mm` — tag-bus length over ``n`` entries, used
  by the Figure 2 wire-delay study.
* :class:`IssueQueueTiming` — wakeup, select and cycle time as a function
  of enabled window size, used by :mod:`repro.ooo.timing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TimingModelError
from repro.tech.cacti import structure_height_mm
from repro.tech.parameters import TechnologyParameters
from repro.units import ps

#: Composition of one R10000-style integer queue entry.
R10000_RAM_BITS: int = 52
R10000_CAM3_BITS: int = 12
R10000_CAM4_BITS: int = 6
#: Area of a CAM cell relative to a RAM cell.
CAM_AREA_FACTOR: float = 2.0

#: Wakeup coefficients at the 0.25 micron reference, in ps.  The base is
#: the tag match + result OR of a 16-entry queue; the per-entry term is
#: the (buffered, hence linear) tag-line extension cost.
WAKEUP_BASE_PS: float = 277.8
WAKEUP_PS_PER_ENTRY: float = 3.06

#: Select-tree coefficients at the 0.25 micron reference, in ps: a tree
#: of 4-input priority encoders, one level per factor of four entries,
#: plus the root grant driver.
SELECT_PS_PER_LEVEL: float = 118.1
SELECT_ROOT_PS: float = 41.7


def r10000_entry_ram_equivalent_bytes() -> float:
    """Single-ported-RAM-equivalent area of one integer queue entry.

    >>> 55 < r10000_entry_ram_equivalent_bytes() < 60
    True
    """
    ram = R10000_RAM_BITS * 1.0
    cam3 = R10000_CAM3_BITS * CAM_AREA_FACTOR * 3**2
    cam4 = R10000_CAM4_BITS * CAM_AREA_FACTOR * 4**2
    return (ram + cam3 + cam4) / 8.0


def queue_bus_length_mm(n_entries: int) -> float:
    """Tag/operand bus length (mm) over ``n_entries`` queue entries."""
    if n_entries < 1:
        raise TimingModelError(f"need at least one queue entry, got {n_entries}")
    entry_height = structure_height_mm(r10000_entry_ram_equivalent_bytes())
    return n_entries * entry_height


def select_tree_levels(window: int) -> int:
    """Height of the 4-input priority-encoder selection tree.

    Entries that are disabled have their encoders disabled too, so the
    tree height follows the number of *enabled* entries:

    >>> select_tree_levels(16), select_tree_levels(64), select_tree_levels(128)
    (2, 3, 4)
    """
    if window < 1:
        raise TimingModelError(f"window must be positive, got {window}")
    if window == 1:
        return 1
    return math.ceil(math.log(window, 4))


@dataclass(frozen=True)
class IssueQueueTiming:
    """Wakeup + select timing for a (possibly adaptive) issue queue.

    The wakeup and select operation must complete atomically within one
    cycle so dependent instructions can issue in consecutive cycles, so
    the queue's cycle time is their sum.
    """

    tech: TechnologyParameters

    def wakeup_ns(self, window: int) -> float:
        """Tag drive + match + ready-OR delay for ``window`` entries."""
        if window < 1:
            raise TimingModelError(f"window must be positive, got {window}")
        scale = self.tech.gate_delay_scale()
        return ps((WAKEUP_BASE_PS + WAKEUP_PS_PER_ENTRY * window) * scale)

    def select_ns(self, window: int) -> float:
        """Selection-tree delay for ``window`` enabled entries."""
        scale = self.tech.gate_delay_scale()
        levels = select_tree_levels(window)
        return ps((SELECT_ROOT_PS + SELECT_PS_PER_LEVEL * levels) * scale)

    def cycle_time_ns(self, window: int) -> float:
        """Processor cycle time when ``window`` entries are enabled.

        >>> from repro.tech import technology
        >>> t = IssueQueueTiming(technology(0.18))
        >>> t.cycle_time_ns(16) < t.cycle_time_ns(64) < t.cycle_time_ns(128)
        True
        """
        return self.wakeup_ns(window) + self.select_ns(window)
