"""Per-interval TPI for the adaptive cache hierarchy.

The paper's Section 6 explores intra-application diversity only for the
instruction queue; the movable-boundary cache supports the same
interval-level treatment, and this module provides it.  One
stack-distance pass is chopped into fixed-reference intervals; each
interval's depth histogram yields its TPI at *every* boundary position,
so the per-configuration series needed by the interval policies come
from a single simulation, exactly as in the queue study.

Series reuse the :class:`repro.ooo.intervals.IntervalSeries` container
(its ``window`` field holds the boundary position here) so the policy
replay harness in :mod:`repro.core.policies` works unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import CacheGeometry, PAPER_GEOMETRY
from repro.cache.stackdist import DepthHistogram, StackDistanceEngine
from repro.cache.tpi import CacheTpiModel
from repro.errors import SimulationError
from repro.ooo.intervals import IntervalSeries

#: Interval length in D-cache references; at a ~0.3 load/store density
#: this matches the order of the paper's 2000-instruction intervals.
DEFAULT_INTERVAL_REFS: int = 600


def cache_interval_tpi_series(
    addresses: np.ndarray,
    load_store_fraction: float,
    boundaries: tuple[int, ...],
    interval_refs: int = DEFAULT_INTERVAL_REFS,
    geometry: CacheGeometry = PAPER_GEOMETRY,
    tpi_model: CacheTpiModel | None = None,
) -> dict[int, IntervalSeries]:
    """Per-interval TPI of every boundary position over one trace.

    Only whole intervals are reported.  The engine state carries across
    intervals (the cache is not flushed between them).
    """
    if interval_refs < 1:
        raise SimulationError("interval length must be positive")
    n_intervals = len(addresses) // interval_refs
    if n_intervals == 0:
        raise SimulationError(
            f"trace of {len(addresses)} refs is shorter than one interval"
        )
    model = tpi_model if tpi_model is not None else CacheTpiModel()
    engine = StackDistanceEngine(geometry)
    depths = engine.process(np.asarray(addresses[: n_intervals * interval_refs]))

    instr_per_interval = int(round(interval_refs / load_store_fraction))
    per_boundary: dict[int, list[float]] = {k: [] for k in boundaries}
    for i in range(n_intervals):
        chunk = depths[i * interval_refs : (i + 1) * interval_refs]
        hist = DepthHistogram.from_depths(geometry, chunk)
        for k in boundaries:
            per_boundary[k].append(
                model.evaluate(hist, load_store_fraction, k).tpi_ns
            )
    return {
        k: IntervalSeries(
            window=k,
            cycle_time_ns=model.timing.cycle_time_ns(k),
            interval_instructions=instr_per_interval,
            tpi_ns=np.array(values),
        )
        for k, values in per_boundary.items()
    }
