"""TPI / TPImiss evaluation for the cache study.

The paper's figure of merit is **average time per instruction** (TPI, in
ns): cycle time divided by IPC.  For the cache study the pipeline is a
4-way issue machine that is 67% efficient (2.67 IPC) *in the absence of
L1 D-cache misses*; all L1-miss stalls are charged on top:

* a reference that hits the exclusive L2 stalls the (blocking) pipeline
  for the full L2 hit latency;
* a reference that misses both levels stalls it for the flat 30 ns
  average board-level-cache latency.

``TPImiss`` is the portion of TPI contributed by those stalls — the
paper reports it separately (Figure 8) to show how well adaptivity
reduces miss penalties even when total TPI moves less.

Traces contain only data references, so instruction counts are derived
from each application's load/store density: ``N_instr = N_refs /
load_store_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stackdist import DepthHistogram
from repro.cache.timing import CacheTimingModel
from repro.errors import RemovedApiError, WorkloadError

#: Base pipeline efficiency of the 4-way issue processor (paper Sec 5.1).
BASE_IPC: float = 2.67


@dataclass(frozen=True)
class TpiBreakdown:
    """TPI decomposition for one application at one boundary position."""

    l1_increments: int
    cycle_time_ns: float
    tpi_ns: float
    tpi_miss_ns: float
    l1_miss_ratio: float
    l2_hit_latency_cycles: int
    n_references: int
    n_instructions: float

    @property
    def tpi_base_ns(self) -> float:
        """Miss-free component of TPI (cycle time / 2.67)."""
        return self.tpi_ns - self.tpi_miss_ns

    @property
    def effective_ipc(self) -> float:
        """Instructions per cycle implied by the total TPI."""
        return self.cycle_time_ns / self.tpi_ns


@dataclass(frozen=True)
class CacheTpiModel:
    """Evaluates TPI for (histogram, load/store density, boundary) triples."""

    timing: CacheTimingModel = field(default_factory=CacheTimingModel)
    base_ipc: float = BASE_IPC

    def evaluate(
        self,
        histogram: DepthHistogram,
        load_store_fraction: float,
        l1_increments: int,
    ) -> TpiBreakdown:
        """Compute the TPI breakdown at one boundary position.

        Parameters
        ----------
        histogram:
            Stack-depth histogram of the application's reference trace.
        load_store_fraction:
            Fraction of the dynamic instruction stream that accesses the
            D-cache; converts reference counts into instruction counts.
        l1_increments:
            Boundary position (number of 8 KB increments in L1).
        """
        if not 0.0 < load_store_fraction <= 1.0:
            raise WorkloadError(
                f"load/store fraction must be in (0, 1], got {load_store_fraction}"
            )
        n_refs = histogram.n_references
        if n_refs == 0:
            raise WorkloadError("cannot evaluate TPI for an empty trace")
        n_instr = n_refs / load_store_fraction
        cycle = self.timing.cycle_time_ns(l1_increments)
        l2_latency = self.timing.l2_hit_latency_cycles(l1_increments)

        l2_hits = histogram.l2_hits(l1_increments)
        misses = histogram.misses(l1_increments)
        stall_ns = (
            l2_hits * l2_latency * cycle + misses * self.timing.miss_latency_ns()
        )
        tpi_miss = stall_ns / n_instr
        tpi = cycle / self.base_ipc + tpi_miss
        return TpiBreakdown(
            l1_increments=l1_increments,
            cycle_time_ns=cycle,
            tpi_ns=tpi,
            tpi_miss_ns=tpi_miss,
            l1_miss_ratio=histogram.l1_miss_ratio(l1_increments),
            l2_hit_latency_cycles=l2_latency,
            n_references=n_refs,
            n_instructions=n_instr,
        )

    def sweep_breakdowns(
        self,
        histogram: DepthHistogram,
        load_store_fraction: float,
        boundaries: tuple[int, ...],
    ) -> dict[int, TpiBreakdown]:
        """Evaluate every boundary position in ``boundaries``."""
        return {
            k: self.evaluate(histogram, load_store_fraction, k) for k in boundaries
        }

    def sweep(self, *args: object, **kwargs: object) -> dict[int, TpiBreakdown]:
        """Removed alias of :meth:`sweep_breakdowns`.

        .. deprecated:: 1.1
        .. versionremoved:: 1.2
            The deprecation cycle is complete.  Query through
            :func:`repro.api.run_query` (the public surface), or call
            :meth:`sweep_breakdowns` for the raw breakdowns.
        """
        raise RemovedApiError(
            "CacheTpiModel.sweep was removed after its deprecation cycle; "
            "query through repro.api.run_query(OptimizationRequest('dcache', "
            "workload)) or call CacheTpiModel.sweep_breakdowns for raw "
            "breakdowns"
        )

    def best_boundary(
        self,
        histogram: DepthHistogram,
        load_store_fraction: float,
        boundaries: tuple[int, ...],
    ) -> TpiBreakdown:
        """The boundary minimising total TPI — what the paper's CAP
        compiler / runtime environment is assumed to identify per app."""
        results = self.sweep_breakdowns(histogram, load_store_fraction, boundaries)
        return min(results.values(), key=lambda r: r.tpi_ns)
