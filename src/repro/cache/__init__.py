"""Complexity-adaptive two-level data cache hierarchy.

The paper's cache structure (Section 5.2) is a single on-chip 128 KB
array of sixteen 8 KB two-way set-associative, two-way-banked increments
with a *movable L1/L2 boundary*: increments on the near side of the
boundary form the L1 D-cache, the rest form the L2.  Caching is
exclusive and the index/tag mapping is constant, so moving the boundary
requires no invalidation or data motion.

Modules
-------
:mod:`repro.cache.config`
    Geometry and boundary configuration types.
:mod:`repro.cache.sets`
    LRU set primitive shared by the simulators.
:mod:`repro.cache.hierarchy`
    Direct two-level exclusive simulator (reference implementation).
:mod:`repro.cache.stackdist`
    One-pass per-set stack-distance engine whose output evaluates every
    boundary position at once (fast path).
:mod:`repro.cache.timing`
    Cycle time and L1/L2 latencies per boundary position.
:mod:`repro.cache.tpi`
    TPI / TPImiss evaluation combining hit counts with timing.
:mod:`repro.cache.adaptive`
    The movable-boundary CAS wrapper.
"""

from repro.cache.config import CacheGeometry, HierarchyConfig, PAPER_GEOMETRY
from repro.cache.hierarchy import AccessLevel, TwoLevelExclusiveCache
from repro.cache.stackdist import COLD_DEPTH, DepthHistogram, StackDistanceEngine
from repro.cache.timing import CacheTimingModel, LatencyMode
from repro.cache.tpi import CacheTpiModel, TpiBreakdown
from repro.cache.adaptive import AdaptiveCacheHierarchy

__all__ = [
    "CacheGeometry",
    "HierarchyConfig",
    "PAPER_GEOMETRY",
    "AccessLevel",
    "TwoLevelExclusiveCache",
    "StackDistanceEngine",
    "DepthHistogram",
    "COLD_DEPTH",
    "CacheTimingModel",
    "LatencyMode",
    "CacheTpiModel",
    "TpiBreakdown",
    "AdaptiveCacheHierarchy",
]
