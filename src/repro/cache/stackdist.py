"""Per-set LRU stack-distance engine — the fast path of the cache study.

The key observation (Section 5 of DESIGN.md): because the mapping rule
keeps the set index constant for every boundary position, and because
exclusion plus LRU make L1 and L2 jointly hold, in recency order, the 32
most recently used blocks of each set, the whole hierarchy behaves per
set as a single 32-way LRU stack partitioned at depth ``2k`` (``k`` = L1
increments).  A reference therefore:

* hits L1 at boundary ``k``  iff its stack depth is ``< 2k``,
* hits L2                    iff its stack depth is in ``[2k, 32)``,
* misses both                otherwise (including cold misses).

One simulation pass recording each reference's stack depth evaluates
*every* boundary position at once — Figure 7's eight curves, and the
adaptive argmin of Figures 8/9, all come from a single histogram.
:mod:`repro.cache.hierarchy` is the direct reference simulator; property
tests assert the two agree access-by-access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.config import CacheGeometry
from repro.errors import SimulationError

#: Depth recorded for a reference whose block was not resident at any
#: depth the structure can hold (capacity miss beyond the total ways, or
#: cold miss).  Chosen to fit in uint8 with room above ``total_ways``.
COLD_DEPTH: int = 255


class StackDistanceEngine:
    """Streams block addresses and records per-reference stack depths.

    Depths are counted in *ways within the set* (0 = most recently
    used).  Anything at or beyond the structure's total associativity is
    folded into :data:`COLD_DEPTH` — those references miss the whole
    structure regardless of the boundary, so their exact depth is
    irrelevant and the per-set stacks can be truncated, keeping every
    list scan bounded by 32 entries.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._n_sets = geometry.n_sets
        self._max_depth = geometry.total_ways
        self._block_shift = geometry.block_bytes.bit_length() - 1
        if 1 << self._block_shift != geometry.block_bytes:
            raise SimulationError("block size must be a power of two")
        self._stacks: list[list[int]] = [[] for _ in range(self._n_sets)]

    def reset(self) -> None:
        """Forget all cached blocks (equivalent to a cold structure)."""
        self._stacks = [[] for _ in range(self._n_sets)]

    def process(self, addresses: np.ndarray) -> np.ndarray:
        """Return the stack depth of every byte address in ``addresses``.

        The returned array is ``uint8``; entries are either a depth in
        ``[0, total_ways)`` or :data:`COLD_DEPTH`.
        """
        n_sets = self._n_sets
        max_depth = self._max_depth
        stacks = self._stacks
        blocks = np.asarray(addresses, dtype=np.uint64) >> np.uint64(self._block_shift)
        set_idx = (blocks % np.uint64(n_sets)).astype(np.int64)
        depths = np.empty(len(blocks), dtype=np.uint8)
        block_list = blocks.tolist()
        set_list = set_idx.tolist()
        for i, (block, s) in enumerate(zip(block_list, set_list)):
            stack = stacks[s]
            try:
                depth = stack.index(block)
            except ValueError:
                depths[i] = COLD_DEPTH
                stack.insert(0, block)
                if len(stack) > max_depth:
                    stack.pop()
                continue
            depths[i] = depth
            if depth:
                del stack[depth]
                stack.insert(0, block)
        return depths


@dataclass(frozen=True)
class DepthHistogram:
    """Histogram of stack depths for one trace against one geometry.

    ``counts[d]`` is the number of references whose block was found at
    depth ``d``; ``cold`` counts references that missed the entire
    structure.  All boundary-dependent hit counts derive from this.
    """

    geometry: CacheGeometry
    counts: np.ndarray
    cold: int

    @classmethod
    def from_depths(cls, geometry: CacheGeometry, depths: np.ndarray) -> "DepthHistogram":
        """Aggregate the output of :meth:`StackDistanceEngine.process`."""
        raw = np.bincount(depths, minlength=COLD_DEPTH + 1)
        counts = raw[: geometry.total_ways].astype(np.int64)
        cold = int(raw[COLD_DEPTH])
        covered = int(counts.sum()) + cold
        if covered != len(depths):
            raise SimulationError(
                f"depth histogram lost references: {covered} != {len(depths)}"
            )
        return cls(geometry=geometry, counts=counts, cold=cold)

    @property
    def n_references(self) -> int:
        """Total references in the trace."""
        return int(self.counts.sum()) + self.cold

    def l1_hits(self, l1_increments: int) -> int:
        """References hitting L1 with the boundary at ``l1_increments``."""
        ways = l1_increments * self.geometry.ways_per_increment
        return int(self.counts[:ways].sum())

    def l2_hits(self, l1_increments: int) -> int:
        """References missing L1 but hitting the exclusive L2."""
        ways = l1_increments * self.geometry.ways_per_increment
        return int(self.counts[ways:].sum())

    def misses(self, l1_increments: int) -> int:
        """References missing the whole structure (boundary independent)."""
        del l1_increments  # misses do not depend on the boundary
        return self.cold

    def l1_miss_ratio(self, l1_increments: int) -> float:
        """L1 miss ratio at the given boundary."""
        n = self.n_references
        if n == 0:
            raise SimulationError("empty trace has no miss ratio")
        return 1.0 - self.l1_hits(l1_increments) / n

    def merged(self, other: "DepthHistogram") -> "DepthHistogram":
        """Combine two histograms of the same geometry (trace concatenation)."""
        if other.geometry != self.geometry:
            raise SimulationError("cannot merge histograms of different geometries")
        return DepthHistogram(
            geometry=self.geometry,
            counts=self.counts + other.counts,
            cold=self.cold + other.cold,
        )
