"""LRU set primitive shared by the cache simulators.

A set is an ordered collection of block tags, most recently used first.
Both the direct two-level simulator and the stack-distance engine are
built on this primitive, which keeps their replacement behaviour
identical by construction.
"""

from __future__ import annotations

from repro.errors import SimulationError


class LruSet:
    """One set of an LRU cache, ordered most-recently-used first.

    A plain list is the right structure here: associativities in this
    study are at most 32, so linear scans beat any pointer-based scheme,
    and the MRU-first ordering makes stack depth equal to list index.
    """

    __slots__ = ("capacity", "_blocks")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"set capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._blocks: list[int] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, tag: int) -> bool:
        return tag in self._blocks

    @property
    def blocks(self) -> tuple[int, ...]:
        """Resident tags, most recently used first."""
        return tuple(self._blocks)

    def depth_of(self, tag: int) -> int | None:
        """Stack depth of ``tag`` (0 = MRU), or ``None`` if absent."""
        try:
            return self._blocks.index(tag)
        except ValueError:
            return None

    def touch(self, tag: int) -> bool:
        """Reference ``tag``: promote to MRU if present, else miss.

        Returns ``True`` on hit.  On a miss the caller decides how to
        fill (the two-level simulator must coordinate with the other
        level, so filling is not implicit here).
        """
        depth = self.depth_of(tag)
        if depth is None:
            return False
        if depth:
            del self._blocks[depth]
            self._blocks.insert(0, tag)
        return True

    def insert_mru(self, tag: int) -> int | None:
        """Insert ``tag`` at MRU; return the evicted LRU tag, if any."""
        if tag in self._blocks:
            raise SimulationError(f"tag {tag:#x} inserted while already resident")
        self._blocks.insert(0, tag)
        if len(self._blocks) > self.capacity:
            return self._blocks.pop()
        return None

    def remove(self, tag: int) -> None:
        """Remove ``tag`` (used by the exclusive hierarchy on promotion)."""
        try:
            self._blocks.remove(tag)
        except ValueError:
            raise SimulationError(f"tag {tag:#x} removed while not resident") from None

    def resize(self, capacity: int) -> list[int]:
        """Change capacity; return tags evicted if it shrank (LRU first kept order).

        Evicted tags are returned least-recent-last so callers can
        reinsert them elsewhere preserving recency order.
        """
        if capacity < 1:
            raise SimulationError(f"set capacity must be positive, got {capacity}")
        self.capacity = capacity
        evicted = self._blocks[capacity:]
        del self._blocks[capacity:]
        return evicted

    def extend_lru(self, tags: list[int]) -> None:
        """Append ``tags`` at the LRU end, preserving their order."""
        if len(self._blocks) + len(tags) > self.capacity:
            raise SimulationError("extend_lru would exceed set capacity")
        self._blocks.extend(tags)
