"""The movable-boundary cache hierarchy as a complexity-adaptive structure.

Wraps the direct simulator and timing model behind the
:class:`~repro.core.structure.ComplexityAdaptiveStructure` interface so
the Configuration Manager and dynamic clock can drive it.  A
configuration is simply the number of L1 increments.

Because caching is exclusive and the index/tag mapping is constant,
moving the boundary needs **no cleanup**: increments change designation
without invalidating or transferring data (paper Section 5.2).  Only the
clock changes, so the reconfiguration cost is exactly one clock switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cache.config import (
    CacheGeometry,
    HierarchyConfig,
    PAPER_GEOMETRY,
    PAPER_MAX_L1_INCREMENTS,
)
from repro.cache.hierarchy import AccessLevel, TwoLevelExclusiveCache
from repro.cache.timing import CacheTimingModel
from repro.core.structure import (
    ComplexityAdaptiveStructure,
    ReconfigurationCost,
    StructureRunResult,
)
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.obs.profile import profiled


class AdaptiveCacheHierarchy(ComplexityAdaptiveStructure[int]):
    """Complexity-adaptive two-level D-cache (configuration = L1 increments)."""

    name = "dcache"

    def __init__(
        self,
        geometry: CacheGeometry = PAPER_GEOMETRY,
        timing: CacheTimingModel | None = None,
        max_l1_increments: int = PAPER_MAX_L1_INCREMENTS,
        initial_l1_increments: int = 2,
    ) -> None:
        self.geometry = geometry
        self.timing = timing if timing is not None else CacheTimingModel(geometry=geometry)
        self._boundaries = geometry.boundary_positions(max_l1_increments)
        self._cache = TwoLevelExclusiveCache(
            HierarchyConfig(geometry=geometry, l1_increments=initial_l1_increments)
        )

    # -- ComplexityAdaptiveStructure interface ---------------------------

    def _all_configurations(self) -> Sequence[int]:
        """Designed boundary positions, smallest (fastest) L1 first."""
        return self._boundaries

    def delay_ns(self, config: int) -> float:
        """Critical-path delay = slowest enabled L1 increment access."""
        self.validate(config)
        return self.timing.l1_access_time_ns(config)

    @property
    def configuration(self) -> int:
        """Current number of L1 increments."""
        return self._cache.config.l1_increments

    def reconfigure(self, config: int) -> ReconfigurationCost:
        """Move the boundary; data stays put, only the clock may change."""
        self.validate_reachable(config)
        changed = config != self.configuration
        obs.event(
            "structure.reconfigure", structure=self.name,
            from_config=self.configuration, to_config=config, changed=changed,
        )
        metrics().counter(
            "repro_reconfigurations_total", "CAS reconfigure() calls"
        ).inc(structure=self.name, changed=str(changed).lower())
        self._cache.move_boundary(
            HierarchyConfig(geometry=self.geometry, l1_increments=config)
        )
        return ReconfigurationCost(cleanup_cycles=0, requires_clock_switch=changed)

    # -- simulation passthrough ------------------------------------------

    @property
    def hierarchy(self) -> TwoLevelExclusiveCache:
        """The underlying direct simulator."""
        return self._cache

    def run(
        self, addresses: np.ndarray, *, record_outcomes: bool = True
    ) -> StructureRunResult:
        """Simulate a trace under the current boundary.

        ``outcomes`` holds the per-reference :class:`AccessLevel` array
        (omitted when ``record_outcomes`` is false); ``stats`` carries
        the level tallies and hit/miss ratios.
        """
        with obs.span(
            "structure.run", level="structure",
            structure=self.name, configuration=self.configuration,
            n_events=len(addresses),
        ), profiled(f"structure.run:{self.name}"):
            levels = self._cache.run(addresses)
        metrics().counter(
            "repro_structure_runs_total", "adaptive-structure run() calls"
        ).inc(structure=self.name)
        n = len(levels)
        counts = np.bincount(levels, minlength=4)
        n_l1 = int(counts[AccessLevel.L1])
        n_l2 = int(counts[AccessLevel.L2])
        n_miss = int(counts[AccessLevel.MISS])
        return StructureRunResult(
            structure=self.name,
            configuration=self.configuration,
            n_events=n,
            stats={
                "l1_hits": float(n_l1),
                "l2_hits": float(n_l2),
                "misses": float(n_miss),
                "l1_hit_ratio": n_l1 / n if n else 0.0,
                "l2_hit_ratio": n_l2 / n if n else 0.0,
                "miss_ratio": n_miss / n if n else 0.0,
            },
            outcomes=levels if record_outcomes else None,
        )


@dataclass(frozen=True)
class CacheConfigurationSpace:
    """Convenience bundle describing the paper's evaluated design space."""

    geometry: CacheGeometry = PAPER_GEOMETRY
    max_l1_increments: int = PAPER_MAX_L1_INCREMENTS
    timing: CacheTimingModel = field(default_factory=CacheTimingModel)

    @property
    def boundaries(self) -> tuple[int, ...]:
        """Evaluated boundary positions (L1 of 8-64 KB)."""
        return self.geometry.boundary_positions(self.max_l1_increments)

    def l1_sizes_kb(self) -> tuple[float, ...]:
        """The x-axis of the paper's Figure 7."""
        return tuple(
            HierarchyConfig(self.geometry, k).l1_kb for k in self.boundaries
        )
