"""Cycle time and latency model of the adaptive cache hierarchy.

Timing rules, following Section 5.1/5.2 of the paper:

* The L1 D-cache access determines the processor cycle time, which is
  therefore the access time of the *slowest enabled L1 increment* —
  bank access plus the (repeated) global bus out to the boundary.
* The L1 latency is a constant **3 cycles** for every configuration, to
  keep instruction scheduling and load forwarding simple; what varies
  with the boundary is the cycle time itself.
* L2 hit latency is ``ceil(L2 access time / cycle time)`` cycles.
* The average L2 *miss* latency is a flat **30 ns** (an estimate of the
  average latency with a large board-level cache), i.e. 2-3x the L2 hit
  latency.

Section 3.1 of the paper sketches an alternative for structures where
single-cycle access is not critical: hold the clock at the fastest
configuration's rate and stretch the structure's *latency in cycles*
instead.  :class:`LatencyMode` implements both options so the tradeoff
can be studied (see the ablation benchmarks).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.cache.config import CacheGeometry, PAPER_GEOMETRY
from repro.errors import ConfigurationError
from repro.tech.cacti import best_bus_delay_ns
from repro.tech.parameters import TechnologyParameters, technology

#: L1 hit latency in cycles, constant across configurations (paper Sec 5.1).
L1_LATENCY_CYCLES: int = 3

#: Average L2 miss latency in ns (board-level cache estimate, paper Sec 5.1).
L2_MISS_LATENCY_NS: float = 30.0

#: L2 access serialization factor: the L2 performs a tag access and a
#: data access in sequence over the full-length global bus and then
#: streams the block over the data bus.  Calibrated so the 30 ns miss
#: latency is 2-3x the L2 hit latency, as the paper states.
L2_SERIALIZATION_FACTOR: float = 5.5


class LatencyMode(enum.Enum):
    """How a larger L1 pays for its longer access path (paper Sec 3.1)."""

    #: Slow the processor clock so L1 stays at 3 cycles (the paper's
    #: evaluated design).
    CLOCK = "clock"
    #: Keep the clock at the fastest configuration's rate and stretch
    #: the L1 latency in cycles instead; only loads/stores are affected.
    LATENCY = "latency"


@dataclass(frozen=True)
class CacheTimingModel:
    """Derives cycle times and latencies for every boundary position."""

    geometry: CacheGeometry = PAPER_GEOMETRY
    tech: TechnologyParameters = field(default_factory=lambda: technology(0.18))
    mode: LatencyMode = LatencyMode.CLOCK

    def l1_access_time_ns(self, l1_increments: int) -> float:
        """Access time of the slowest enabled L1 increment."""
        if not 1 <= l1_increments <= self.geometry.n_increments - 1:
            raise ConfigurationError(
                f"l1_increments must be in [1, {self.geometry.n_increments - 1}], "
                f"got {l1_increments}"
            )
        inc = self.geometry.increment_timing
        bus_mm = l1_increments * inc.height_mm
        return inc.bank_access_ns(self.tech) + best_bus_delay_ns(bus_mm, self.tech)

    def cycle_time_ns(self, l1_increments: int) -> float:
        """Processor cycle time with the boundary at ``l1_increments``."""
        if self.mode is LatencyMode.LATENCY:
            # Clock pinned to the fastest (one-increment) configuration.
            return self.l1_access_time_ns(1)
        return self.l1_access_time_ns(l1_increments)

    def l1_latency_cycles(self, l1_increments: int) -> int:
        """L1 hit latency in cycles."""
        if self.mode is LatencyMode.LATENCY:
            stretch = self.l1_access_time_ns(l1_increments) / self.l1_access_time_ns(1)
            return math.ceil(L1_LATENCY_CYCLES * stretch)
        return L1_LATENCY_CYCLES

    def l2_access_time_ns(self) -> float:
        """L2 access time: full-bus tag + data access, serialized.

        The farthest increment is always the last physical one, so the
        L2 access time does not depend on the boundary position.
        """
        inc = self.geometry.increment_timing
        span_mm = self.geometry.n_increments * inc.height_mm
        one_pass = inc.bank_access_ns(self.tech) + best_bus_delay_ns(span_mm, self.tech)
        return L2_SERIALIZATION_FACTOR * one_pass

    def l2_hit_latency_cycles(self, l1_increments: int) -> int:
        """L2 hit latency in cycles: ceil(L2 access time / cycle time)."""
        return math.ceil(self.l2_access_time_ns() / self.cycle_time_ns(l1_increments))

    def miss_latency_ns(self) -> float:
        """Average latency of an access that misses the whole structure."""
        return L2_MISS_LATENCY_NS
