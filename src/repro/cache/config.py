"""Cache geometry and hierarchy configuration.

The paper's mapping rule (Section 5.2) is what makes the movable
boundary cheap: *"as an increment is added to (subtracted from) the L1
cache, its size and associativity are increased (decreased) by the
increment size and associativity, and the L2 cache size and
associativity are changed accordingly."*  Holding the number of sets
constant keeps the index and tag bits identical for every boundary
position, and exclusion guarantees a block lives in exactly one
increment, so reconfiguration needs no invalidations or copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tech.cacti import CacheIncrementTiming
from repro.units import to_kb


@dataclass(frozen=True)
class CacheGeometry:
    """Physical geometry of the complexity-adaptive cache structure.

    The default values reproduce the paper's design: a 128 KB structure
    of sixteen 8 KB increments, each two-way set associative and two-way
    banked (two side-by-side 4 KB direct-mapped banks, one way each),
    with 32-byte blocks.  The derived set count (128) is the same for
    every boundary position — the invariant the mapping rule depends on.
    """

    n_increments: int = 16
    ways_per_increment: int = 2
    block_bytes: int = 32
    increment_bytes: int = 8192
    #: Timing model of one increment; the bus-height is set by one
    #: internal bank (half the increment, one way of all sets).
    increment_timing: CacheIncrementTiming = field(
        default_factory=lambda: CacheIncrementTiming(
            bank_bytes=4096, n_banks=2, associativity=1, block_bytes=32
        )
    )

    def __post_init__(self) -> None:
        if self.n_increments < 2:
            raise ConfigurationError("need at least two increments (one L1, one L2)")
        if self.increment_bytes % (self.ways_per_increment * self.block_bytes) != 0:
            raise ConfigurationError(
                "increment capacity must be divisible by ways * block size"
            )
        if self.increment_timing.increment_bytes != self.increment_bytes:
            raise ConfigurationError(
                "increment timing model capacity "
                f"({self.increment_timing.increment_bytes} B) disagrees with "
                f"geometry ({self.increment_bytes} B)"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets, identical for every boundary position."""
        return self.increment_bytes // (self.ways_per_increment * self.block_bytes)

    @property
    def total_ways(self) -> int:
        """Total associativity of the whole structure."""
        return self.n_increments * self.ways_per_increment

    @property
    def total_bytes(self) -> int:
        """Total capacity of the structure."""
        return self.n_increments * self.increment_bytes

    def boundary_positions(self, max_l1_increments: int | None = None) -> tuple[int, ...]:
        """Legal L1/L2 boundary positions (number of L1 increments).

        At least one increment must remain on each side.  The paper
        limits its investigation to L1 caches up to 64 KB, which callers
        express through ``max_l1_increments``.
        """
        top = self.n_increments - 1
        if max_l1_increments is not None:
            top = min(top, max_l1_increments)
        return tuple(range(1, top + 1))


#: The geometry evaluated in the paper.
PAPER_GEOMETRY = CacheGeometry()

#: The paper restricts the study to L1 sizes of 8-64 KB (1-8 increments).
PAPER_MAX_L1_INCREMENTS: int = 8


@dataclass(frozen=True)
class HierarchyConfig:
    """One placement of the movable L1/L2 boundary.

    ``l1_increments`` increments (counted from the near end of the bus)
    form the L1 D-cache; the remainder form the exclusive L2.
    """

    geometry: CacheGeometry
    l1_increments: int

    def __post_init__(self) -> None:
        if not 1 <= self.l1_increments <= self.geometry.n_increments - 1:
            raise ConfigurationError(
                f"boundary must leave at least one increment on each side; "
                f"got {self.l1_increments} of {self.geometry.n_increments}"
            )

    @property
    def l1_ways(self) -> int:
        """L1 associativity (grows with the boundary, per the mapping rule)."""
        return self.l1_increments * self.geometry.ways_per_increment

    @property
    def l2_ways(self) -> int:
        """L2 associativity."""
        return self.geometry.total_ways - self.l1_ways

    @property
    def l1_bytes(self) -> int:
        """L1 capacity in bytes."""
        return self.l1_increments * self.geometry.increment_bytes

    @property
    def l2_bytes(self) -> int:
        """L2 capacity in bytes."""
        return self.geometry.total_bytes - self.l1_bytes

    @property
    def l1_kb(self) -> float:
        """L1 capacity in KB (the x-axis of the paper's Figure 7)."""
        return to_kb(self.l1_bytes)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``'L1 16KB 4-way / L2 112KB 28-way'``."""
        return (
            f"L1 {self.l1_kb:.0f}KB {self.l1_ways}-way / "
            f"L2 {to_kb(self.l2_bytes):.0f}KB {self.l2_ways}-way"
        )
