"""Direct two-level exclusive blocking-cache simulator.

This is the reference implementation of the paper's cache behaviour: two
physically distinct levels with an exclusive caching policy, simulated
access by access.  It exists (a) to document the actual hardware
protocol — promotion on L2 hit, demotion of the L1 victim, drop of the
L2 victim — and (b) as the oracle against which the one-pass
stack-distance fast path (:mod:`repro.cache.stackdist`) is property
tested.

The paper's simulation methodology is followed: blocking caches, access
conflicts ignored, every reference treated uniformly (the trace is the
first N data-cache references of each application).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cache.config import CacheGeometry, HierarchyConfig
from repro.cache.sets import LruSet
from repro.errors import SimulationError


class AccessLevel(enum.IntEnum):
    """Where a reference was satisfied."""

    L1 = 1
    L2 = 2
    MISS = 3


class TwoLevelExclusiveCache:
    """A two-level exclusive cache with a (re)movable L1/L2 boundary.

    With exclusion, a block is in L1 or L2 but never both; on an L2 hit
    the block is promoted to L1 MRU and the L1 victim is demoted to L2
    MRU, so each set's combined contents remain the 32 most recently
    used blocks in recency order.  That invariant is what lets the
    boundary move without invalidating or copying data.
    """

    def __init__(self, config: HierarchyConfig) -> None:
        self.geometry: CacheGeometry = config.geometry
        self._block_shift = self.geometry.block_bytes.bit_length() - 1
        if 1 << self._block_shift != self.geometry.block_bytes:
            raise SimulationError("block size must be a power of two")
        self._l1 = [LruSet(config.l1_ways) for _ in range(self.geometry.n_sets)]
        self._l2 = [LruSet(config.l2_ways) for _ in range(self.geometry.n_sets)]
        self._config = config

    @property
    def config(self) -> HierarchyConfig:
        """Current boundary placement."""
        return self._config

    def _set_index(self, block: int) -> int:
        return block % self.geometry.n_sets

    def access(self, address: int) -> AccessLevel:
        """Reference one byte address; return the level that satisfied it."""
        block = address >> self._block_shift
        s = self._set_index(block)
        l1, l2 = self._l1[s], self._l2[s]
        if l1.touch(block):
            return AccessLevel.L1
        if block in l2:
            # Promote to L1, demote the L1 victim into L2 (exclusive swap).
            l2.remove(block)
            demoted = l1.insert_mru(block)
            if demoted is not None:
                l2.insert_mru(demoted)
            return AccessLevel.L2
        # Miss in both levels: fill L1, demote its victim, drop L2's victim.
        demoted = l1.insert_mru(block)
        if demoted is not None:
            l2.insert_mru(demoted)
        return AccessLevel.MISS

    def run(self, addresses: np.ndarray) -> np.ndarray:
        """Access every address in order; return per-access levels."""
        out = np.empty(len(addresses), dtype=np.uint8)
        for i, addr in enumerate(np.asarray(addresses, dtype=np.uint64).tolist()):
            out[i] = self.access(int(addr))
        return out

    def level_counts(self, addresses: np.ndarray) -> dict[AccessLevel, int]:
        """Convenience: run a trace and tally levels."""
        levels = self.run(addresses)
        counts = np.bincount(levels, minlength=4)
        return {
            AccessLevel.L1: int(counts[AccessLevel.L1]),
            AccessLevel.L2: int(counts[AccessLevel.L2]),
            AccessLevel.MISS: int(counts[AccessLevel.MISS]),
        }

    def move_boundary(self, config: HierarchyConfig) -> None:
        """Reposition the L1/L2 boundary without losing any cached data.

        This is the reconfiguration operation the CAP design makes
        cheap: increments change *designation*, not contents.  In the
        simulator we re-partition each set's unified recency stack at
        the new L1 associativity, which models exactly that — no block
        is invalidated and recency order is preserved.
        """
        if config.geometry != self.geometry:
            raise SimulationError("cannot move boundary across different geometries")
        for s in range(self.geometry.n_sets):
            unified = list(self._l1[s].blocks) + list(self._l2[s].blocks)
            l1 = LruSet(config.l1_ways)
            l2 = LruSet(config.l2_ways)
            l1.extend_lru(unified[: config.l1_ways])
            l2.extend_lru(unified[config.l1_ways : config.l1_ways + config.l2_ways])
            self._l1[s], self._l2[s] = l1, l2
        self._config = config

    def flush(self) -> int:
        """Invalidate the entire structure; return blocks discarded.

        A CAP never needs this (the movable boundary preserves
        contents); it models the *naive* reconfigurable design that
        re-maps on every reconfiguration, used by the flush ablation to
        quantify what exclusion + constant mapping buy.
        """
        discarded = 0
        for s in range(self.geometry.n_sets):
            discarded += len(self._l1[s]) + len(self._l2[s])
            self._l1[s] = LruSet(self._config.l1_ways)
            self._l2[s] = LruSet(self._config.l2_ways)
        return discarded

    def resident_blocks(self, set_index: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Expose (L1, L2) contents of one set, MRU first — for tests."""
        return self._l1[set_index].blocks, self._l2[set_index].blocks
