"""Online adaptive control: the paper's Section 4 hardware, honestly.

"Adaptive control hardware may read the performance monitoring hardware
at regular intervals at runtime, analyze the performance information,
predict the configuration which will perform best over the next
interval ... and switch configurations as appropriate."

The interval *policies* in :mod:`repro.core.policies` replay against
precomputed per-configuration TPI series, which implicitly hands the
controller oracle knowledge (the best-config label of the finished
interval).  This module implements the mechanism without any oracle: a
controller that only ever observes the TPI of the configuration it
actually ran, maintains per-configuration running estimates, and
*probes* — occasionally spends one interval on a neighbouring
configuration to refresh a stale estimate.  Switching (and probing)
pays the full clock-switch cost.

This is the classic explore/exploit structure; the exploration period
and the hysteresis margin are the hardware-budget knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.monitor import IntervalSample, PerformanceMonitor
from repro.errors import ConfigurationError, SimulationError
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.ooo.intervals import IntervalSeries

#: Histogram buckets for per-interval TPI observations (ns).
INTERVAL_TPI_BUCKETS: tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0,
)


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning of the online controller."""

    #: Exponential-moving-average weight of new observations.
    ewma_alpha: float = 0.4
    #: Probe a neighbouring configuration every this many intervals.
    probe_period: int = 12
    #: Required relative advantage before switching home configurations
    #: (hysteresis; plays the role of the Section 6 confidence gate).
    switch_margin: float = 0.08
    #: How many intervals an estimate stays fresh without a probe.
    staleness_limit: int = 32
    #: Relative TPI jump on the home configuration that signals a phase
    #: change and triggers an immediate probe (change detection).
    change_threshold: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.probe_period < 2:
            raise ConfigurationError("probe_period must be >= 2")
        if self.switch_margin < 0:
            raise ConfigurationError("switch_margin must be >= 0")
        if self.staleness_limit < self.probe_period:
            raise ConfigurationError("staleness_limit must cover a probe period")


@dataclass(frozen=True)
class ControllerOutcome:
    """Result of one online-controlled run."""

    total_time_ns: float
    switch_overhead_ns: float
    n_switches: int
    n_probes: int
    chosen: np.ndarray
    instructions: int

    @property
    def tpi_ns(self) -> float:
        """Achieved TPI including every switching and probing cost."""
        return self.total_time_ns / self.instructions


class OnlineController:
    """Explore/exploit controller over a discrete configuration set."""

    def __init__(
        self,
        configurations: tuple[int, ...],
        config: ControllerConfig | None = None,
    ) -> None:
        if len(configurations) < 2:
            raise ConfigurationError("controller needs at least two configurations")
        self.configurations = tuple(sorted(configurations))
        self.config = config if config is not None else ControllerConfig()
        self.monitor = PerformanceMonitor()
        self._estimate: dict[int, float] = {}
        self._last_seen: dict[int, int] = {}
        self._interval = 0
        self._change_flag = False

    def observe(self, configuration: int, tpi_ns: float, instructions: int) -> None:
        """Feed one finished interval's measurement."""
        if configuration not in self.configurations:
            raise ConfigurationError(f"unknown configuration {configuration}")
        alpha = self.config.ewma_alpha
        old = self._estimate.get(configuration)
        if old is not None and abs(tpi_ns - old) > self.config.change_threshold * old:
            # the running configuration's behaviour jumped: a phase
            # change — stale estimates for the others, probe soon
            self._change_flag = True
            obs.event(
                "controller.phase_change",
                interval=self._interval, configuration=configuration,
                tpi_ns=tpi_ns, estimate_ns=old,
            )
            metrics().counter(
                "repro_controller_phase_changes_total",
                "phase changes flagged by the online controller",
            ).inc()
        metrics().counter(
            "repro_controller_observations_total",
            "interval measurements fed to the online controller",
        ).inc()
        metrics().histogram(
            "repro_controller_interval_tpi_ns",
            "observed per-interval TPI (ns)",
            buckets=INTERVAL_TPI_BUCKETS,
        ).observe(tpi_ns)
        self._estimate[configuration] = (
            tpi_ns if old is None else (1 - alpha) * old + alpha * tpi_ns
        )
        self._last_seen[configuration] = self._interval
        self.monitor.record(
            IntervalSample(self._interval, configuration, tpi_ns, instructions)
        )
        self._interval += 1

    def _stalest_neighbour(self, home: int) -> int:
        idx = self.configurations.index(home)
        neighbours = [
            self.configurations[j]
            for j in (idx - 1, idx + 1)
            if 0 <= j < len(self.configurations)
        ]
        return min(
            neighbours, key=lambda c: self._last_seen.get(c, -1)
        )

    def choose(self, home: int) -> tuple[int, bool]:
        """Pick the configuration for the next interval.

        Returns ``(configuration, is_probe)``.  A probe runs a stale
        neighbour for one interval; otherwise the best current estimate
        wins if it clears the hysteresis margin, else we stay home.
        """
        if home not in self.configurations:
            raise ConfigurationError(f"unknown configuration {home}")
        choice, is_probe, trigger = self._decide(home)
        reg = metrics()
        reg.counter(
            "repro_controller_choose_total",
            "next-interval decisions made by the online controller",
        ).inc()
        if is_probe:
            reg.counter(
                "repro_controller_probe_steps_total",
                "exploration steps (probing a stale neighbour)",
            ).inc()
        else:
            reg.counter(
                "repro_controller_exploit_steps_total",
                "exploitation steps (running the best-known configuration)",
            ).inc()
        obs.event(
            "controller.choose",
            interval=self._interval, home=home, chosen=choice,
            probe=is_probe, trigger=trigger,
        )
        return choice, is_probe

    def _decide(self, home: int) -> tuple[int, bool, str]:
        """The decision rule of :meth:`choose`, plus why it fired."""
        cfg = self.config
        change_pending = self._change_flag
        due = self._interval > 0 and (
            self._interval % cfg.probe_period == 0 or self._change_flag
        )
        if due:
            neighbour = self._stalest_neighbour(home)
            age = self._interval - self._last_seen.get(neighbour, -(10**9))
            if age >= min(cfg.probe_period, 2) or self._change_flag:
                self._change_flag = False
                return neighbour, True, (
                    "change_detected" if change_pending else "probe_period"
                )
        known = {c: e for c, e in self._estimate.items()}
        if not known:
            return home, False, "stay"
        best = min(known, key=known.__getitem__)
        if best != home and home in known:
            if known[best] < known[home] * (1 - cfg.switch_margin):
                return best, False, "switch"
            return home, False, "hysteresis_hold"
        return home, False, "stay"


def run_online(
    series: Mapping[int, IntervalSeries],
    controller: OnlineController,
    initial: int,
    switch_pause_cycles: int = 30,
) -> ControllerOutcome:
    """Drive the controller against per-configuration interval series.

    Unlike :func:`repro.core.policies.evaluate_policy`, the controller
    is never told which configuration *would have been* best — it only
    sees what it ran.
    """
    if initial not in series:
        raise SimulationError(f"initial configuration {initial} not in series")
    lengths = {len(s) for s in series.values()}
    if len(lengths) != 1:
        raise SimulationError("series lengths disagree")
    n_intervals = lengths.pop()
    instr = {s.interval_instructions for s in series.values()}.pop()

    home = initial
    current = initial
    total_ns = 0.0
    overhead_ns = 0.0
    switches = 0
    probes = 0
    chosen = np.empty(n_intervals, dtype=np.int64)

    with obs.span(
        "online_run", level="run",
        initial=initial, n_intervals=n_intervals,
        switch_pause_cycles=switch_pause_cycles,
    ) as run_sp:
        for i in range(n_intervals):
            with obs.span(
                "interval", level="interval", index=i, configuration=current
            ) as sp:
                chosen[i] = current
                tpi = float(series[current].tpi_ns[i])
                total_ns += tpi * instr
                controller.observe(current, tpi, instr)
                nxt, is_probe = controller.choose(home)
                if is_probe:
                    probes += 1
                    trigger = "probe"
                else:
                    trigger = (
                        "controller_switch" if nxt != home else "probe_return"
                    )
                    home = nxt
                sp.set(tpi_ns=tpi)
                if nxt != current:
                    # covers both deliberate moves and the return from a probe
                    with obs.span(
                        "reconfigure", level="reconfigure",
                        from_config=current, to_config=nxt, trigger=trigger,
                    ) as rsp:
                        pause = switch_pause_cycles * series[nxt].cycle_time_ns
                        overhead_ns += pause
                        total_ns += pause
                        switches += 1
                        current = nxt
                        rsp.set(pause_ns=pause)
                        metrics().counter(
                            "repro_controller_switches_total",
                            "configuration switches during online runs",
                        ).inc(trigger=trigger)
        run_sp.set(
            n_switches=switches, n_probes=probes,
            total_time_ns=total_ns, switch_overhead_ns=overhead_ns,
        )

    return ControllerOutcome(
        total_time_ns=total_ns,
        switch_overhead_ns=overhead_ns,
        n_switches=switches,
        n_probes=probes,
        chosen=chosen,
        instructions=n_intervals * instr,
    )
