"""Online adaptive control: the paper's Section 4 hardware, honestly.

"Adaptive control hardware may read the performance monitoring hardware
at regular intervals at runtime, analyze the performance information,
predict the configuration which will perform best over the next
interval ... and switch configurations as appropriate."

The interval *policies* in :mod:`repro.core.policies` replay against
precomputed per-configuration TPI series, which implicitly hands the
controller oracle knowledge (the best-config label of the finished
interval).  This module implements the mechanism without any oracle: a
controller that only ever observes the TPI of the configuration it
actually ran, maintains per-configuration running estimates, and
*probes* — occasionally spends one interval on a neighbouring
configuration to refresh a stale estimate.  Switching (and probing)
pays the full clock-switch cost.

This is the classic explore/exploit structure; the exploration period
and the hysteresis margin are the hardware-budget knobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.monitor import IntervalSample, PerformanceMonitor
from repro.errors import (
    ConfigurationError,
    DegradedHardwareError,
    SensorError,
    SimulationError,
)
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.ooo.intervals import IntervalSeries
from repro.robust.guardrails import GuardrailConfig, ThrashDetector
from repro.robust.sensors import NoisySensor

#: Histogram buckets for per-interval TPI observations (ns).
INTERVAL_TPI_BUCKETS: tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0,
)


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning of the online controller."""

    #: Exponential-moving-average weight of new observations.
    ewma_alpha: float = 0.4
    #: Probe a neighbouring configuration every this many intervals.
    probe_period: int = 12
    #: Required relative advantage before switching home configurations
    #: (hysteresis; plays the role of the Section 6 confidence gate).
    switch_margin: float = 0.08
    #: How many intervals an estimate stays fresh without a probe.
    staleness_limit: int = 32
    #: Relative TPI jump on the home configuration that signals a phase
    #: change and triggers an immediate probe (change detection).
    change_threshold: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.probe_period < 2:
            raise ConfigurationError("probe_period must be >= 2")
        if self.switch_margin < 0:
            raise ConfigurationError("switch_margin must be >= 0")
        if self.staleness_limit < self.probe_period:
            raise ConfigurationError("staleness_limit must cover a probe period")


@dataclass(frozen=True)
class ControllerOutcome:
    """Result of one online-controlled run."""

    total_time_ns: float
    switch_overhead_ns: float
    n_switches: int
    n_probes: int
    chosen: np.ndarray
    instructions: int

    @property
    def tpi_ns(self) -> float:
        """Achieved TPI including every switching and probing cost."""
        return self.total_time_ns / self.instructions


class OnlineController:
    """Explore/exploit controller over a discrete configuration set."""

    def __init__(
        self,
        configurations: tuple[int, ...],
        config: ControllerConfig | None = None,
        guardrails: GuardrailConfig | None = None,
    ) -> None:
        if len(configurations) < 2:
            raise ConfigurationError("controller needs at least two configurations")
        self.configurations = tuple(sorted(configurations))
        self.config = config if config is not None else ControllerConfig()
        self.monitor = PerformanceMonitor()
        self._thrash = ThrashDetector(guardrails) if guardrails is not None else None
        self._estimate: dict[int, float] = {}
        self._last_seen: dict[int, int] = {}
        self._interval = 0
        self._change_flag = False

    @property
    def thrash_locks(self) -> int:
        """Thrash locks imposed so far (0 without guardrails)."""
        return self._thrash.n_locks if self._thrash is not None else 0

    def mask_configuration(self, configuration: int) -> None:
        """Remove a configuration that hardware faults made unreachable.

        The controller forgets its estimate for the masked
        configuration and never selects or probes it again.  Masking
        the last remaining configuration is refused — a controller with
        nothing to run is a dead machine, not a degraded one.
        """
        if configuration not in self.configurations:
            raise ConfigurationError(f"unknown configuration {configuration}")
        if len(self.configurations) == 1:
            raise DegradedHardwareError(
                "cannot mask the controller's last remaining configuration"
            )
        self.configurations = tuple(
            c for c in self.configurations if c != configuration
        )
        self._estimate.pop(configuration, None)
        self._last_seen.pop(configuration, None)
        obs.event(
            "robust.config_masked",
            interval=self._interval, configuration=configuration,
            remaining=len(self.configurations),
        )
        metrics().counter(
            "repro_robust_configs_masked_total",
            "configurations masked out of the online controller",
        ).inc()

    def observe(self, configuration: int, tpi_ns: float, instructions: int) -> None:
        """Feed one finished interval's measurement.

        Validation happens before any state mutation: a NaN or negative
        TPI used to update ``_estimate`` first and only blow up when the
        monitor sample was built, leaving a poisoned estimate behind.
        """
        if configuration not in self.configurations:
            raise ConfigurationError(f"unknown configuration {configuration}")
        try:
            if not tpi_ns > 0 or not math.isfinite(tpi_ns):
                raise SensorError(
                    f"observed TPI must be finite and positive, got {tpi_ns!r}"
                )
        except TypeError:
            raise SensorError(
                f"observed TPI must be numeric, got {tpi_ns!r}"
            ) from None
        if instructions <= 0:
            raise SimulationError("interval must contain instructions")
        alpha = self.config.ewma_alpha
        old = self._estimate.get(configuration)
        if old is not None and abs(tpi_ns - old) > self.config.change_threshold * old:
            # the running configuration's behaviour jumped: a phase
            # change — stale estimates for the others, probe soon
            self._change_flag = True
            obs.event(
                "controller.phase_change",
                interval=self._interval, configuration=configuration,
                tpi_ns=tpi_ns, estimate_ns=old,
            )
            metrics().counter(
                "repro_controller_phase_changes_total",
                "phase changes flagged by the online controller",
            ).inc()
        metrics().counter(
            "repro_controller_observations_total",
            "interval measurements fed to the online controller",
        ).inc()
        metrics().histogram(
            "repro_controller_interval_tpi_ns",
            "observed per-interval TPI (ns)",
            buckets=INTERVAL_TPI_BUCKETS,
        ).observe(tpi_ns)
        self._estimate[configuration] = (
            tpi_ns if old is None else (1 - alpha) * old + alpha * tpi_ns
        )
        self._last_seen[configuration] = self._interval
        self.monitor.record(
            IntervalSample(self._interval, configuration, tpi_ns, instructions)
        )
        self._interval += 1

    def _stalest_neighbour(self, home: int) -> int:
        idx = self.configurations.index(home)
        neighbours = [
            self.configurations[j]
            for j in (idx - 1, idx + 1)
            if 0 <= j < len(self.configurations)
        ]
        if not neighbours:  # masking can leave home as the only config
            return home
        return min(
            neighbours, key=lambda c: self._last_seen.get(c, -1)
        )

    def choose(self, home: int) -> tuple[int, bool]:
        """Pick the configuration for the next interval.

        Returns ``(configuration, is_probe)``.  A probe runs a stale
        neighbour for one interval; otherwise the best current estimate
        wins if it clears the hysteresis margin, else we stay home.
        """
        if home not in self.configurations:
            raise ConfigurationError(f"unknown configuration {home}")
        choice, is_probe, trigger = self._decide(home)
        reg = metrics()
        reg.counter(
            "repro_controller_choose_total",
            "next-interval decisions made by the online controller",
        ).inc()
        if is_probe:
            reg.counter(
                "repro_controller_probe_steps_total",
                "exploration steps (probing a stale neighbour)",
            ).inc()
        else:
            reg.counter(
                "repro_controller_exploit_steps_total",
                "exploitation steps (running the best-known configuration)",
            ).inc()
        obs.event(
            "controller.choose",
            interval=self._interval, home=home, chosen=choice,
            probe=is_probe, trigger=trigger,
        )
        return choice, is_probe

    def _decide(self, home: int) -> tuple[int, bool, str]:
        """The decision rule of :meth:`choose`, plus why it fired."""
        cfg = self.config
        if self._thrash is not None and self._thrash.locked(self._interval):
            # thrash cooldown: no probes, no switches — sit at home
            return home, False, "thrash_lock"
        if len(self.configurations) < 2:
            return home, False, "stay"
        change_pending = self._change_flag
        due = self._interval > 0 and (
            self._interval % cfg.probe_period == 0 or self._change_flag
        )
        if due:
            neighbour = self._stalest_neighbour(home)
            age = self._interval - self._last_seen.get(neighbour, -(10**9))
            if neighbour != home and (
                age >= min(cfg.probe_period, 2) or self._change_flag
            ):
                self._change_flag = False
                return neighbour, True, (
                    "change_detected" if change_pending else "probe_period"
                )
        known = {c: e for c, e in self._estimate.items()}
        if not known:
            return home, False, "stay"
        best = min(known, key=known.__getitem__)
        if best != home and home in known:
            if known[best] < known[home] * (1 - cfg.switch_margin):
                if self._thrash is not None:
                    # count the commit attempt; if it trips the lock,
                    # this very switch is the one that gets suppressed
                    self._thrash.record_switch(self._interval)
                    if self._thrash.locked(self._interval):
                        return home, False, "thrash_lock"
                return best, False, "switch"
            return home, False, "hysteresis_hold"
        return home, False, "stay"


def run_online(
    series: Mapping[int, IntervalSeries],
    controller: OnlineController,
    initial: int,
    switch_pause_cycles: int = 30,
    sensor: NoisySensor | None = None,
    fault_schedule: Mapping[int, Sequence[int]] | None = None,
) -> ControllerOutcome:
    """Drive the controller against per-configuration interval series.

    Unlike :func:`repro.core.policies.evaluate_policy`, the controller
    is never told which configuration *would have been* best — it only
    sees what it ran.

    ``sensor`` (optional) corrupts the controller's *observations*: the
    machine still spends the true interval time, but the controller sees
    the noisy reading, and dropped samples are simply never observed.
    ``fault_schedule`` (optional) maps interval index to configurations
    that become unreachable at the start of that interval (hardware
    increments dying mid-run); the controller masks them, and if the
    machine is *currently running* a config that just died, it pays a
    forced evacuation switch before the interval runs.
    """
    if initial not in series:
        raise SimulationError(f"initial configuration {initial} not in series")
    lengths = {len(s) for s in series.values()}
    if len(lengths) != 1:
        raise SimulationError("series lengths disagree")
    n_intervals = lengths.pop()
    instr = {s.interval_instructions for s in series.values()}.pop()

    home = initial
    current = initial
    total_ns = 0.0
    overhead_ns = 0.0
    switches = 0
    probes = 0
    chosen = np.empty(n_intervals, dtype=np.int64)

    with obs.span(
        "online_run", level="run",
        initial=initial, n_intervals=n_intervals,
        switch_pause_cycles=switch_pause_cycles,
    ) as run_sp:
        for i in range(n_intervals):
            if fault_schedule and i in fault_schedule:
                for dead in fault_schedule[i]:
                    if (
                        dead in controller.configurations
                        and len(controller.configurations) > 1
                    ):
                        controller.mask_configuration(dead)
                if home not in controller.configurations:
                    home = min(
                        controller.configurations,
                        key=lambda c: controller._estimate.get(c, float("inf")),
                    )
                if current not in controller.configurations:
                    # forced evacuation: the running config just died
                    pause = switch_pause_cycles * series[home].cycle_time_ns
                    overhead_ns += pause
                    total_ns += pause
                    switches += 1
                    obs.event(
                        "robust.fault_evacuation",
                        interval=i, from_config=current, to_config=home,
                        pause_ns=pause,
                    )
                    metrics().counter(
                        "repro_robust_fault_evacuations_total",
                        "forced switches off a config that died mid-run",
                    ).inc()
                    current = home
            with obs.span(
                "interval", level="interval", index=i, configuration=current
            ) as sp:
                chosen[i] = current
                tpi = float(series[current].tpi_ns[i])
                total_ns += tpi * instr
                observed = sensor.read(i, tpi) if sensor is not None else tpi
                if observed is not None:
                    controller.observe(current, observed, instr)
                nxt, is_probe = controller.choose(home)
                if is_probe:
                    probes += 1
                    trigger = "probe"
                else:
                    trigger = (
                        "controller_switch" if nxt != home else "probe_return"
                    )
                    home = nxt
                sp.set(tpi_ns=tpi)
                if nxt != current:
                    # covers both deliberate moves and the return from a probe
                    with obs.span(
                        "reconfigure", level="reconfigure",
                        from_config=current, to_config=nxt, trigger=trigger,
                    ) as rsp:
                        pause = switch_pause_cycles * series[nxt].cycle_time_ns
                        overhead_ns += pause
                        total_ns += pause
                        switches += 1
                        current = nxt
                        rsp.set(pause_ns=pause)
                        metrics().counter(
                            "repro_controller_switches_total",
                            "configuration switches during online runs",
                        ).inc(trigger=trigger)
        run_sp.set(
            n_switches=switches, n_probes=probes,
            total_time_ns=total_ns, switch_overhead_ns=overhead_ns,
        )

    return ControllerOutcome(
        total_time_ns=total_ns,
        switch_overhead_ns=overhead_ns,
        n_switches=switches,
        n_probes=probes,
        chosen=chosen,
        instructions=n_intervals * instr,
    )
