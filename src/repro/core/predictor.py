"""Pattern-based next-configuration predictor with confidence.

Section 6 of the paper observes two behaviours in interval-level
best-configuration sequences: long stable runs and regular alternation
(both exploitable, Figures 12/13a), and irregular stretches where the
configurations perform equally and switching would only pay overhead
(Figure 13b).  It concludes that, "as with value prediction, a
complexity-adaptive hardware predictor should assign a confidence level
to each prediction ... to avoid needless reconfiguration overhead."

This module implements that proposed mechanism with the machinery of a
two-level branch predictor: a shift register of the last ``history``
best-configuration labels indexes a pattern table of per-configuration
saturating counters; the predicted configuration is the pattern's
strongest counter and the confidence is its normalised strength.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Prediction:
    """One predictor output."""

    configuration: Hashable
    confidence: float


@dataclass(frozen=True)
class PredictorStats:
    """Lifetime accuracy accounting."""

    predictions: int
    correct: int
    confident_predictions: int
    confident_correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of all predictions that matched the next best label."""
        return self.correct / self.predictions if self.predictions else 0.0

    @property
    def confident_accuracy(self) -> float:
        """Accuracy restricted to predictions above the confidence bar."""
        if not self.confident_predictions:
            return 0.0
        return self.confident_correct / self.confident_predictions


class ConfigurationPredictor:
    """Two-level pattern predictor over best-configuration labels."""

    def __init__(
        self,
        configurations: Sequence[Hashable],
        history: int = 4,
        counter_max: int = 7,
        confidence_threshold: float = 0.75,
    ) -> None:
        configs = tuple(configurations)
        if len(configs) < 2:
            raise ConfigurationError("predictor needs at least two configurations")
        if history < 1:
            raise ConfigurationError("history length must be positive")
        if counter_max < 1:
            raise ConfigurationError("counter maximum must be positive")
        if not 0.0 < confidence_threshold <= 1.0:
            raise ConfigurationError("confidence threshold must be in (0, 1]")
        self.configurations = configs
        self.history_length = history
        self.counter_max = counter_max
        self.confidence_threshold = confidence_threshold
        self._history: list[Hashable] = []
        self._table: dict[tuple, dict[Hashable, int]] = {}
        self._pending: Prediction | None = None
        self._stats = [0, 0, 0, 0]  # predictions, correct, confident, conf-correct

    def _pattern(self) -> tuple:
        return tuple(self._history[-self.history_length :])

    def predict(self) -> Prediction:
        """Predict the best configuration for the next interval.

        Before any history accumulates (or for a never-seen pattern) the
        prediction is the most recent label with zero confidence — i.e.
        "stay put", which is the cheap default.
        """
        if not self._history:
            return Prediction(configuration=self.configurations[0], confidence=0.0)
        counters = self._table.get(self._pattern())
        if not counters:
            return Prediction(configuration=self._history[-1], confidence=0.0)
        best = max(counters, key=lambda c: counters[c])
        total = sum(counters.values())
        confidence = counters[best] / total if total else 0.0
        return Prediction(configuration=best, confidence=confidence)

    def should_switch(self, current: Hashable) -> Prediction | None:
        """Predict, and return the prediction only if it clears the bar
        and differs from ``current``; otherwise return ``None``.

        This is the confidence gate the paper calls for: low-confidence
        predictions keep the current configuration to avoid paying
        reconfiguration overhead for no expected gain.
        """
        prediction = self.predict()
        self._pending = prediction
        if (
            prediction.configuration != current
            and prediction.confidence >= self.confidence_threshold
        ):
            return prediction
        return None

    def update(self, actual_best: Hashable) -> None:
        """Train on the observed best configuration of the last interval."""
        if actual_best not in self.configurations:
            raise ConfigurationError(
                f"label {actual_best!r} is not a known configuration"
            )
        if self._pending is not None:
            self._stats[0] += 1
            hit = self._pending.configuration == actual_best
            if hit:
                self._stats[1] += 1
            if self._pending.confidence >= self.confidence_threshold:
                self._stats[2] += 1
                if hit:
                    self._stats[3] += 1
            self._pending = None
        if self._history:
            counters = self._table.setdefault(self._pattern(), {})
            value = counters.get(actual_best, 0)
            counters[actual_best] = min(self.counter_max, value + 1)
            # gently decay competitors so regime changes are learnable
            for other in list(counters):
                if other != actual_best and counters[other] > 0:
                    counters[other] -= 0 if counters[other] < self.counter_max else 1
        self._history.append(actual_best)
        if len(self._history) > self.history_length:
            del self._history[0]

    @property
    def stats(self) -> PredictorStats:
        """Accuracy counters accumulated so far."""
        return PredictorStats(
            predictions=self._stats[0],
            correct=self._stats[1],
            confident_predictions=self._stats[2],
            confident_correct=self._stats[3],
        )
