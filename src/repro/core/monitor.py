"""On-chip performance-monitoring hardware (modelled).

Effective configuration management "requires on-chip performance
monitoring hardware, configuration registers, and good heuristics"
(paper Section 4).  This module models the monitoring side: a rolling
record of per-interval samples that policies and predictors read at
reconfiguration points.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.errors import SensorError, SimulationError


@dataclass(frozen=True)
class IntervalSample:
    """What the monitoring hardware reports for one execution interval."""

    index: int
    configuration: Hashable
    tpi_ns: float
    instructions: int

    def __post_init__(self) -> None:
        # NaN slips through a bare `<= 0` comparison (every comparison
        # with NaN is False) and would silently poison every average
        # downstream; check finiteness explicitly.
        if not isinstance(self.tpi_ns, (int, float)) or not math.isfinite(self.tpi_ns):
            raise SensorError(
                f"interval TPI must be a finite number, got {self.tpi_ns!r}"
            )
        if self.tpi_ns <= 0:
            raise SensorError(f"interval TPI must be positive, got {self.tpi_ns}")
        if self.instructions <= 0:
            raise SimulationError("interval must contain instructions")


class PerformanceMonitor:
    """Rolling window of interval samples.

    ``depth`` bounds how much history the hardware retains; heuristics
    that want more must maintain their own state (as the predictor's
    pattern table does).

    Two deliberately different TPI views coexist (each documents its
    own semantics):

    * :attr:`cumulative_tpi_ns` is **lifetime**: the hardware keeps
      running time/instruction accumulators that survive window
      eviction, so the average covers *every* sample ever recorded —
      eviction from the bounded window never changes it.
    * :meth:`window_tpi_ns` is **windowed**: it reads only the retained
      samples, which is what interval heuristics actually see.
    """

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise SimulationError("monitor depth must be positive")
        self.depth = depth
        self._samples: deque[IntervalSample] = deque(maxlen=depth)
        self._total_time_ns = 0.0
        self._total_instructions = 0

    def record(self, sample: IntervalSample) -> None:
        """Store a new interval sample, evicting beyond ``depth``.

        The lifetime accumulators behind :attr:`cumulative_tpi_ns` are
        updated *before* any eviction, so evicted samples keep counting
        toward the cumulative average.
        """
        # IntervalSample validates at construction, but the accumulators
        # here are the stats that a bad value poisons irreversibly —
        # re-check at the recording boundary.
        if not math.isfinite(sample.tpi_ns) or sample.tpi_ns <= 0:
            raise SensorError(
                f"refusing to record non-finite/non-positive TPI "
                f"{sample.tpi_ns!r}"
            )
        self._total_time_ns += sample.tpi_ns * sample.instructions
        self._total_instructions += sample.instructions
        self._samples.append(sample)  # deque(maxlen) evicts the oldest

    @property
    def samples(self) -> tuple[IntervalSample, ...]:
        """Retained samples, oldest first."""
        return tuple(self._samples)

    def last(self) -> IntervalSample | None:
        """Most recent sample, if any."""
        return self._samples[-1] if self._samples else None

    @property
    def cumulative_tpi_ns(self) -> float:
        """Instruction-weighted average TPI over **all** samples ever
        recorded — including those already evicted from the window."""
        if self._total_instructions == 0:
            raise SimulationError("monitor has recorded nothing")
        return self._total_time_ns / self._total_instructions

    def window_tpi_ns(self, n: int | None = None) -> float:
        """Instruction-weighted average TPI over the last ``n`` retained
        samples (all retained samples when ``n`` is ``None``).

        Unlike :attr:`cumulative_tpi_ns` this sees only the bounded
        window, so it tracks the *recent* phase of the workload.
        """
        if n is not None and n < 1:
            raise SimulationError(f"window must be positive, got {n}")
        if not self._samples:
            raise SimulationError("monitor has recorded nothing")
        window = list(self._samples)
        if n is not None:
            window = window[-n:]
        time_ns = sum(s.tpi_ns * s.instructions for s in window)
        instructions = sum(s.instructions for s in window)
        return time_ns / instructions

    @property
    def total_instructions(self) -> int:
        """Instructions recorded over the lifetime of the monitor."""
        return self._total_instructions
