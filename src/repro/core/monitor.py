"""On-chip performance-monitoring hardware (modelled).

Effective configuration management "requires on-chip performance
monitoring hardware, configuration registers, and good heuristics"
(paper Section 4).  This module models the monitoring side: a rolling
record of per-interval samples that policies and predictors read at
reconfiguration points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.errors import SimulationError


@dataclass(frozen=True)
class IntervalSample:
    """What the monitoring hardware reports for one execution interval."""

    index: int
    configuration: Hashable
    tpi_ns: float
    instructions: int

    def __post_init__(self) -> None:
        if self.tpi_ns <= 0:
            raise SimulationError(f"interval TPI must be positive, got {self.tpi_ns}")
        if self.instructions <= 0:
            raise SimulationError("interval must contain instructions")


class PerformanceMonitor:
    """Rolling window of interval samples.

    ``depth`` bounds how much history the hardware retains; heuristics
    that want more must maintain their own state (as the predictor's
    pattern table does).
    """

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise SimulationError("monitor depth must be positive")
        self.depth = depth
        self._samples: list[IntervalSample] = []
        self._total_time_ns = 0.0
        self._total_instructions = 0

    def record(self, sample: IntervalSample) -> None:
        """Store a new interval sample, evicting beyond ``depth``."""
        self._samples.append(sample)
        if len(self._samples) > self.depth:
            del self._samples[0]
        self._total_time_ns += sample.tpi_ns * sample.instructions
        self._total_instructions += sample.instructions

    @property
    def samples(self) -> tuple[IntervalSample, ...]:
        """Retained samples, oldest first."""
        return tuple(self._samples)

    def last(self) -> IntervalSample | None:
        """Most recent sample, if any."""
        return self._samples[-1] if self._samples else None

    @property
    def cumulative_tpi_ns(self) -> float:
        """Overall average TPI across everything recorded (not just the
        retained window)."""
        if self._total_instructions == 0:
            raise SimulationError("monitor has recorded nothing")
        return self._total_time_ns / self._total_instructions

    @property
    def total_instructions(self) -> int:
        """Instructions recorded over the lifetime of the monitor."""
        return self._total_instructions
