"""Time-sliced multiprogramming over a CAP.

The paper's process-level scheme puts the configuration registers in
the process state: "the configuration registers are loaded/saved by the
operating system on context switches", and argues the queue-drain
cleanup "occurs only on context switches and therefore does not pose a
noticeable performance penalty".  This module checks that claim by
simulation: a round-robin scheduler time-slices several applications
over one adaptive cache hierarchy, restoring each process's chosen
boundary on switch (with full clock-switch costs), against a
conventional machine that never reconfigures.

Because processes share the physical cache, each one also disturbs the
others' cached data — an effect the trace-per-app studies cannot see
and exactly what a shared-structure simulation adds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.adaptive import AdaptiveCacheHierarchy
from repro.cache.config import PAPER_GEOMETRY
from repro.cache.timing import CacheTimingModel
from repro.cache.tpi import BASE_IPC
from repro.core.clock import DynamicClock
from repro.core.manager import ConfigurationManager
from repro.errors import SimulationError, WorkloadError
from repro.obs import trace as obs
from repro.robust.faults import HardwareFaultModel
from repro.workloads.address_trace import generate_address_trace
from repro.workloads.suite import get_profile


@dataclass(frozen=True)
class ProcessSpec:
    """One process in the multiprogrammed mix."""

    app: str
    boundary: int  # the process's chosen (or imposed) configuration


@dataclass(frozen=True)
class MultiprogramResult:
    """Outcome of one multiprogrammed run."""

    total_time_ns: float
    reconfiguration_overhead_ns: float
    per_process_time_ns: dict[str, float]
    n_context_switches: int
    instructions: float

    @property
    def tpi_ns(self) -> float:
        """Achieved machine-wide TPI including all switching costs."""
        return self.total_time_ns / self.instructions

    @property
    def overhead_fraction(self) -> float:
        """Share of total time spent reconfiguring — the paper claims
        this is not noticeable under process-level adaptivity."""
        return self.reconfiguration_overhead_ns / self.total_time_ns


def run_multiprogrammed(
    processes: tuple[ProcessSpec, ...],
    timeslice_refs: int = 3000,
    total_refs_per_process: int = 24_000,
    seed_offset: int = 0,
    fault_model: HardwareFaultModel | None = None,
) -> MultiprogramResult:
    """Round-robin the processes over one shared adaptive cache.

    Every process runs ``timeslice_refs`` references per slice; on each
    switch the manager restores the incoming process's configuration
    registers (paying drain/clock costs) before its slice starts.

    ``fault_model`` (optional) degrades the shared cache: reset-time
    faults apply before any process is profiled (a process whose chosen
    boundary is masked runs at the largest surviving one), and mid-run
    faults land between slices, with the manager remapping any saved
    registers the fault masked.
    """
    if not processes:
        raise WorkloadError("no processes to run")
    if timeslice_refs < 1 or total_refs_per_process < timeslice_refs:
        raise SimulationError("bad timeslice/total configuration")
    names = [p.app for p in processes]
    if len(set(names)) != len(names):
        raise WorkloadError("duplicate process names")

    dcache = AdaptiveCacheHierarchy()
    if fault_model is not None:
        fault_model.apply(dcache)
    clock = DynamicClock(adaptive_structures=(dcache,))
    manager = ConfigurationManager(clock=clock, structures=(dcache,))
    timing = CacheTimingModel(geometry=PAPER_GEOMETRY)

    with obs.span(
        "multiprogram_run", level="run",
        processes=names, timeslice_refs=timeslice_refs,
        total_refs_per_process=total_refs_per_process,
    ) as run_sp:
        traces: dict[str, np.ndarray] = {}
        cursors: dict[str, int] = {}
        ls: dict[str, float] = {}
        for spec in processes:
            profile = get_profile(spec.app)
            traces[spec.app] = generate_address_trace(
                profile.memory, total_refs_per_process, profile.seed + seed_offset
            )
            cursors[spec.app] = 0
            ls[spec.app] = profile.memory.load_store_fraction
            # pre-load the process's configuration registers; a boundary
            # masked by reset-time faults degrades to the largest
            # surviving one (nearest capacity under truncation masking)
            reachable = tuple(dcache.configurations())
            boundary = (
                spec.boundary if spec.boundary in reachable else reachable[-1]
            )
            if boundary != spec.boundary:
                obs.event(
                    "robust.config_remapped",
                    process=spec.app, structure="dcache",
                    from_config=spec.boundary, to_config=boundary,
                )
            with obs.span("process_setup", level="section", app=spec.app):
                manager.select_for_process(
                    spec.app, "dcache",
                    lambda k, b=boundary: 0.0 if k == b else 1.0,
                )

        total_ns = 0.0
        overhead_ns = 0.0
        per_process: dict[str, float] = {name: 0.0 for name in names}
        switches = 0
        instructions = 0.0

        while any(cursors[n] < total_refs_per_process for n in names):
            for spec in processes:
                name = spec.app
                start = cursors[name]
                if start >= total_refs_per_process:
                    continue
                if fault_model is not None and switches > 0:
                    # reset-time faults already applied; only mid-run
                    # faults (at_interval >= 1) land between slices
                    if fault_model.apply_due(dcache, switches):
                        for proc in names:
                            manager.ensure_valid(proc)
                with obs.span(
                    "interval", level="interval", index=switches, app=name,
                    configuration=spec.boundary,
                ) as sp:
                    cost = manager.context_switch(name)
                    overhead_ns += cost
                    total_ns += cost
                    switches += 1

                    stop = min(start + timeslice_refs, total_refs_per_process)
                    chunk = traces[name][start:stop]
                    cursors[name] = stop
                    slice_run = dcache.run(chunk, record_outcomes=False)

                    k = slice_run.configuration
                    cycle = timing.cycle_time_ns(k)
                    l2_lat = timing.l2_hit_latency_cycles(k)
                    n_l2 = int(slice_run.stat("l2_hits"))
                    n_miss = int(slice_run.stat("misses"))
                    n_instr = len(chunk) / ls[name]
                    slice_ns = (
                        n_instr * cycle / BASE_IPC
                        + n_l2 * l2_lat * cycle
                        + n_miss * timing.miss_latency_ns()
                    )
                    total_ns += slice_ns
                    per_process[name] += slice_ns
                    instructions += n_instr
                    sp.set(
                        tpi_ns=slice_ns / n_instr, switch_overhead_ns=cost,
                        n_refs=len(chunk),
                    )

        run_sp.set(
            n_context_switches=switches, total_time_ns=total_ns,
            reconfiguration_overhead_ns=overhead_ns,
        )

    return MultiprogramResult(
        total_time_ns=total_ns,
        reconfiguration_overhead_ns=overhead_ns,
        per_process_time_ns=per_process,
        n_context_switches=switches,
        instructions=instructions,
    )


def adaptive_vs_conventional_mix(
    apps_with_boundaries: dict[str, int],
    conventional_boundary: int = 2,
    timeslice_refs: int = 3000,
    total_refs_per_process: int = 24_000,
) -> tuple[MultiprogramResult, MultiprogramResult]:
    """Run the same mix with per-process boundaries and with one fixed
    conventional boundary; return (adaptive, conventional) results."""
    adaptive = run_multiprogrammed(
        tuple(ProcessSpec(a, b) for a, b in apps_with_boundaries.items()),
        timeslice_refs=timeslice_refs,
        total_refs_per_process=total_refs_per_process,
    )
    conventional = run_multiprogrammed(
        tuple(
            ProcessSpec(a, conventional_boundary) for a in apps_with_boundaries
        ),
        timeslice_refs=timeslice_refs,
        total_refs_per_process=total_refs_per_process,
    )
    return adaptive, conventional
