"""Fixed and complexity-adaptive hardware structure abstractions.

A CAP (paper Figure 5) is a mix of fixed structures (FS) and
complexity-adaptive structures (CAS).  Each CAS exposes a discrete set
of configurations; each configuration has a critical-path delay, and
the processor clock for a given *configuration vector* is set by the
slowest structure (worst-case timing analysis, predetermined at design
time).  Configuration Control (CC) signals — here, the
:meth:`ComplexityAdaptiveStructure.reconfigure` method — change a CAS's
organisation at runtime, possibly after a cheap "cleanup" operation
(e.g. draining queue entries about to be disabled).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, Mapping, Sequence, TypeVar

from repro.errors import (
    ConfigurationError,
    DegradedHardwareError,
    UnknownStatError,
)
from repro.obs import trace as obs
from repro.obs.metrics import metrics

ConfigT = TypeVar("ConfigT", bound=Hashable)


@dataclass(frozen=True)
class StructureRunResult:
    """Uniform outcome of simulating events through an adaptive structure.

    Every complexity-adaptive structure's ``run()`` returns this shape:
    the structure's name and configuration at run time, how many events
    were simulated, the per-event raw outcomes (access levels, issue
    times, stack depths... — ``None`` when the structure produces only
    aggregates), and a flat ``stats`` mapping of summary numbers.

    Keeping the return type identical across the cache hierarchy, the
    issue queue, the TLB and the branch predictor lets harnesses (and
    the experiment engine) treat a heterogeneous set of structures as
    one population of runnable devices.
    """

    structure: str
    configuration: Any
    n_events: int
    stats: Mapping[str, float]
    outcomes: Any = field(default=None, repr=False)

    def stat(self, name: str) -> float:
        """One summary statistic.

        Unknown names raise :class:`~repro.errors.UnknownStatError`,
        which is both a ``KeyError`` (it is a mapping lookup) and a
        typed :class:`~repro.errors.SimulationError`.
        """
        try:
            return self.stats[name]
        except KeyError:
            raise UnknownStatError(
                f"{self.structure} run reports no stat {name!r}; "
                f"available: {sorted(self.stats)}"
            ) from None


@dataclass(frozen=True)
class ReconfigurationCost:
    """Cost of one CAS reconfiguration.

    Attributes
    ----------
    cleanup_cycles:
        Cycles spent on the structure's cleanup operation (draining
        entries to be disabled, etc.).  The paper argues these are
        "simple and have low enough overhead to not unduly impact
        performance".
    requires_clock_switch:
        Whether the new configuration runs at a different clock, which
        adds the clock-switch pause (see :mod:`repro.core.clock`).
    """

    cleanup_cycles: int = 0
    requires_clock_switch: bool = False


@dataclass(frozen=True)
class FixedStructure:
    """A conventional, non-adaptive structure (FS in the paper's Figure 5).

    Fixed structures still participate in clock selection: their delay
    is a floor on the cycle time of every configuration.
    """

    name: str
    delay_ns: float

    def __post_init__(self) -> None:
        if self.delay_ns < 0:
            raise ConfigurationError(f"structure delay must be >= 0, got {self.delay_ns}")


class ComplexityAdaptiveStructure(abc.ABC, Generic[ConfigT]):
    """A hardware structure whose complexity can change at runtime (CAS).

    Concrete implementations: the movable-boundary cache hierarchy
    (:class:`repro.cache.adaptive.AdaptiveCacheHierarchy`) and the
    resizable instruction queue
    (:class:`repro.ooo.adaptive.AdaptiveInstructionQueue`).

    Capability mask
    ---------------
    A CAS is physically built from ordered increments (cache increments,
    16-entry queue segments, TLB sections, predictor banks).  The
    configuration at ascending position ``i`` enables units ``0..i``, so
    a failed unit ``j`` (marked via :meth:`fail_unit`, typically by a
    :class:`~repro.robust.faults.HardwareFaultModel`) makes every
    configuration at position ``>= j`` unreachable.
    :meth:`configurations` exposes only the reachable prefix;
    :meth:`validate_reachable` (used by every ``reconfigure``) raises a
    typed :class:`~repro.errors.DegradedHardwareError` for masked
    targets.  :meth:`delay_ns` stays defined for masked configurations —
    the worst-case timing analysis happened at design time, and the
    clock must still be computable while the machine migrates *away*
    from a configuration that just lost an increment.
    """

    #: Short identifier used in reports.
    name: str = "cas"

    @abc.abstractmethod
    def _all_configurations(self) -> Sequence[ConfigT]:
        """Every designed configuration, smallest/fastest first."""

    def configurations(self) -> Sequence[ConfigT]:
        """Reachable configurations, smallest/fastest first.

        On healthy hardware this is every designed configuration; after
        increment faults it is the prefix below the smallest failed
        unit.
        """
        designed = tuple(self._all_configurations())
        failed = self.failed_units
        if not failed:
            return designed
        return designed[: min(failed)]

    @abc.abstractmethod
    def delay_ns(self, config: ConfigT) -> float:
        """Critical-path delay of the structure in ``config``."""

    @property
    @abc.abstractmethod
    def configuration(self) -> ConfigT:
        """The currently enabled configuration."""

    @abc.abstractmethod
    def reconfigure(self, config: ConfigT) -> ReconfigurationCost:
        """Switch to ``config``, returning the cost of doing so."""

    # -- degraded-hardware capability mask --------------------------------

    @property
    def failed_units(self) -> frozenset[int]:
        """Indices (into the ascending configuration order) of failed
        hardware units.  Empty on healthy hardware."""
        return getattr(self, "_failed_units", frozenset())

    @property
    def is_degraded(self) -> bool:
        """Whether any hardware unit has been marked failed."""
        return bool(self.failed_units)

    def capability_mask(self) -> tuple[bool, ...]:
        """Reachability of each designed configuration, in order."""
        designed = tuple(self._all_configurations())
        failed = self.failed_units
        limit = min(failed) if failed else len(designed)
        return tuple(i < limit for i in range(len(designed)))

    def fail_unit(self, unit: int) -> None:
        """Mark one hardware unit failed, shrinking the reachable set.

        ``unit`` indexes the ascending configuration order: failing unit
        ``j`` masks every configuration at position ``>= j``.  Failing
        unit 0 would leave no reachable configuration, so it raises
        :class:`~repro.errors.DegradedHardwareError` and leaves the mask
        unchanged.
        """
        n = len(tuple(self._all_configurations()))
        if not 0 <= unit < n:
            raise ConfigurationError(
                f"{self.name}: no hardware unit {unit} (structure has {n})"
            )
        if unit == 0:
            raise DegradedHardwareError(
                f"{self.name}: failing unit 0 would leave no reachable "
                "configuration; the minimal increment must stay functional"
            )
        if unit in self.failed_units:  # a dead unit cannot die twice
            return
        self._failed_units = self.failed_units | {unit}
        obs.event(
            "robust.fault_injected", structure=self.name, unit=unit,
            reachable=len(tuple(self.configurations())),
            current=self.configuration,
        )
        metrics().counter(
            "repro_robust_faults_injected_total",
            "hardware increment faults injected into adaptive structures",
        ).inc(structure=self.name)

    def repair_all_units(self) -> None:
        """Clear the capability mask (tests and what-if studies)."""
        self._failed_units = frozenset()

    # -- validation and derived views -------------------------------------

    def validate(self, config: ConfigT) -> None:
        """Raise :class:`ConfigurationError` for undesigned configs.

        Deliberately ignores the capability mask: a masked configuration
        is still a *designed* one with known timing.  Use
        :meth:`validate_reachable` to additionally reject masked
        targets.
        """
        if config not in tuple(self._all_configurations()):
            raise ConfigurationError(
                f"{self.name}: unsupported configuration {config!r}; "
                f"supported: {tuple(self._all_configurations())!r}"
            )

    def validate_reachable(self, config: ConfigT) -> None:
        """Like :meth:`validate`, but also reject configurations masked
        by hardware faults, with a typed
        :class:`~repro.errors.DegradedHardwareError`."""
        self.validate(config)
        if config not in tuple(self.configurations()):
            raise DegradedHardwareError(
                f"{self.name}: configuration {config!r} is unreachable on "
                f"degraded hardware (failed units "
                f"{sorted(self.failed_units)}; reachable: "
                f"{tuple(self.configurations())!r})"
            )

    def fastest_configuration(self) -> ConfigT:
        """The reachable configuration with the smallest delay."""
        return min(self.configurations(), key=self.delay_ns)

    def slowest_configuration(self) -> ConfigT:
        """The reachable configuration with the largest delay."""
        return max(self.configurations(), key=self.delay_ns)
