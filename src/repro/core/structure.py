"""Fixed and complexity-adaptive hardware structure abstractions.

A CAP (paper Figure 5) is a mix of fixed structures (FS) and
complexity-adaptive structures (CAS).  Each CAS exposes a discrete set
of configurations; each configuration has a critical-path delay, and
the processor clock for a given *configuration vector* is set by the
slowest structure (worst-case timing analysis, predetermined at design
time).  Configuration Control (CC) signals — here, the
:meth:`ComplexityAdaptiveStructure.reconfigure` method — change a CAS's
organisation at runtime, possibly after a cheap "cleanup" operation
(e.g. draining queue entries about to be disabled).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, Mapping, Sequence, TypeVar

from repro.errors import ConfigurationError

ConfigT = TypeVar("ConfigT", bound=Hashable)


@dataclass(frozen=True)
class StructureRunResult:
    """Uniform outcome of simulating events through an adaptive structure.

    Every complexity-adaptive structure's ``run()`` returns this shape:
    the structure's name and configuration at run time, how many events
    were simulated, the per-event raw outcomes (access levels, issue
    times, stack depths... — ``None`` when the structure produces only
    aggregates), and a flat ``stats`` mapping of summary numbers.

    Keeping the return type identical across the cache hierarchy, the
    issue queue, the TLB and the branch predictor lets harnesses (and
    the experiment engine) treat a heterogeneous set of structures as
    one population of runnable devices.
    """

    structure: str
    configuration: Any
    n_events: int
    stats: Mapping[str, float]
    outcomes: Any = field(default=None, repr=False)

    def stat(self, name: str) -> float:
        """One summary statistic, raising ``KeyError`` with context."""
        try:
            return self.stats[name]
        except KeyError:
            raise KeyError(
                f"{self.structure} run reports no stat {name!r}; "
                f"available: {sorted(self.stats)}"
            ) from None


@dataclass(frozen=True)
class ReconfigurationCost:
    """Cost of one CAS reconfiguration.

    Attributes
    ----------
    cleanup_cycles:
        Cycles spent on the structure's cleanup operation (draining
        entries to be disabled, etc.).  The paper argues these are
        "simple and have low enough overhead to not unduly impact
        performance".
    requires_clock_switch:
        Whether the new configuration runs at a different clock, which
        adds the clock-switch pause (see :mod:`repro.core.clock`).
    """

    cleanup_cycles: int = 0
    requires_clock_switch: bool = False


@dataclass(frozen=True)
class FixedStructure:
    """A conventional, non-adaptive structure (FS in the paper's Figure 5).

    Fixed structures still participate in clock selection: their delay
    is a floor on the cycle time of every configuration.
    """

    name: str
    delay_ns: float

    def __post_init__(self) -> None:
        if self.delay_ns < 0:
            raise ConfigurationError(f"structure delay must be >= 0, got {self.delay_ns}")


class ComplexityAdaptiveStructure(abc.ABC, Generic[ConfigT]):
    """A hardware structure whose complexity can change at runtime (CAS).

    Concrete implementations: the movable-boundary cache hierarchy
    (:class:`repro.cache.adaptive.AdaptiveCacheHierarchy`) and the
    resizable instruction queue
    (:class:`repro.ooo.adaptive.AdaptiveInstructionQueue`).
    """

    #: Short identifier used in reports.
    name: str = "cas"

    @abc.abstractmethod
    def configurations(self) -> Sequence[ConfigT]:
        """All supported configurations, smallest/fastest first."""

    @abc.abstractmethod
    def delay_ns(self, config: ConfigT) -> float:
        """Critical-path delay of the structure in ``config``."""

    @property
    @abc.abstractmethod
    def configuration(self) -> ConfigT:
        """The currently enabled configuration."""

    @abc.abstractmethod
    def reconfigure(self, config: ConfigT) -> ReconfigurationCost:
        """Switch to ``config``, returning the cost of doing so."""

    def validate(self, config: ConfigT) -> None:
        """Raise :class:`ConfigurationError` for unsupported configs."""
        if config not in tuple(self.configurations()):
            raise ConfigurationError(
                f"{self.name}: unsupported configuration {config!r}; "
                f"supported: {tuple(self.configurations())!r}"
            )

    def fastest_configuration(self) -> ConfigT:
        """The configuration with the smallest critical-path delay."""
        return min(self.configurations(), key=self.delay_ns)

    def slowest_configuration(self) -> ConfigT:
        """The configuration with the largest critical-path delay."""
        return max(self.configurations(), key=self.delay_ns)
