"""Asynchronous CAP structures (paper Section 4.1).

"Another advantage is that complexity-adaptive structures can be
easily implemented in asynchronous processor designs ... With a
complexity-adaptive approach, very large structures can be designed,
yet the average stage delay can be much lower than the worst-case delay
if faster elements are frequently accessed.  Thus, stage delays are
automatically adjusted according to the location of elements, obviating
the need for a Configuration Manager."

This module quantifies that claim: a handshaked structure whose
per-element completion time is position-dependent (near elements fast,
far elements slow, per the repeated-bus delay profile) has an *average*
access delay set by the access distribution, not the worst case — and
with LRU-style placement, hot data lives near, so the average tracks a
small synchronous configuration while capacity matches the largest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheGeometry, PAPER_GEOMETRY
from repro.cache.stackdist import DepthHistogram
from repro.errors import SimulationError
from repro.tech.cacti import best_bus_delay_ns
from repro.tech.parameters import TechnologyParameters, technology


@dataclass(frozen=True)
class AsyncAccessProfile:
    """Average/worst access delay of a handshaked adaptive structure."""

    average_delay_ns: float
    worst_delay_ns: float
    per_increment_delay_ns: tuple[float, ...]

    @property
    def speedup_over_worst_case(self) -> float:
        """How much the handshake buys over clocking at the worst case."""
        return self.worst_delay_ns / self.average_delay_ns


def async_cache_profile(
    histogram: DepthHistogram,
    geometry: CacheGeometry = PAPER_GEOMETRY,
    tech: TechnologyParameters | None = None,
) -> AsyncAccessProfile:
    """Average self-timed access delay of the full 16-increment structure.

    Element ``i``'s completion time is its bank access plus the bus run
    to position ``i``.  With LRU placement, an access at stack depth
    ``d`` lives in increment ``d // ways_per_increment``; misses pay the
    full-span probe.  The histogram therefore gives the access-location
    distribution directly.
    """
    tech = tech if tech is not None else technology(0.18)
    inc = geometry.increment_timing
    delays = tuple(
        inc.bank_access_ns(tech) + best_bus_delay_ns((i + 1) * inc.height_mm, tech)
        for i in range(geometry.n_increments)
    )
    counts = histogram.counts
    if histogram.n_references == 0:
        raise SimulationError("empty histogram")
    weighted = 0.0
    for depth in range(geometry.total_ways):
        increment = depth // geometry.ways_per_increment
        weighted += float(counts[depth]) * delays[increment]
    # misses probe the whole structure before going off-chip
    weighted += histogram.cold * delays[-1]
    return AsyncAccessProfile(
        average_delay_ns=weighted / histogram.n_references,
        worst_delay_ns=delays[-1],
        per_increment_delay_ns=delays,
    )
