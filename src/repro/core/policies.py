"""Configuration-management policies and their evaluation harness.

Three policies bracket the design space the paper discusses:

* :class:`StaticPolicy` — one configuration throughout (a conventional
  processor, or the per-application process-level choice).
* :class:`OraclePolicy` — switches to each interval's true best
  configuration with perfect knowledge; an upper bound that still pays
  reconfiguration overhead.
* :class:`IntervalAdaptivePolicy` — the Section 6 proposal: a pattern
  predictor with a confidence gate decides, interval by interval,
  whether to reconfigure.

:func:`evaluate_policy` replays a policy against precomputed
per-interval TPI series (one per configuration) and charges clock-switch
and queue-drain overheads on every configuration change, producing the
achieved total time and switch counts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.predictor import ConfigurationPredictor
from repro.errors import ConfigurationError, SimulationError
from repro.ooo.intervals import IntervalSeries

#: Pipeline-hold cycles charged per clock-source change.
DEFAULT_SWITCH_PAUSE_CYCLES: int = 30


class ConfigurationPolicy(abc.ABC):
    """Decides which configuration to run for the next interval."""

    @abc.abstractmethod
    def first(self) -> int:
        """Configuration for the first interval."""

    @abc.abstractmethod
    def next(self, interval: int, observed_tpi_ns: float, best_config: int) -> int:
        """Configuration for interval ``interval + 1``.

        ``observed_tpi_ns`` is what the running configuration achieved
        in the interval just finished; ``best_config`` is the label the
        monitoring hardware derived for that interval (which of the
        candidate configurations would have been fastest).
        """


class StaticPolicy(ConfigurationPolicy):
    """Run one configuration forever."""

    def __init__(self, configuration: int) -> None:
        self.configuration = configuration

    def first(self) -> int:
        return self.configuration

    def next(self, interval: int, observed_tpi_ns: float, best_config: int) -> int:
        return self.configuration


class OraclePolicy(ConfigurationPolicy):
    """Perfect next-interval knowledge (evaluation upper bound).

    The oracle is fed the *next* interval's best label through
    :attr:`schedule`; it still pays switching costs, so it can be beaten
    by no realisable policy but is not free.
    """

    def __init__(self, schedule: np.ndarray) -> None:
        if len(schedule) == 0:
            raise ConfigurationError("oracle schedule is empty")
        self.schedule = np.asarray(schedule)

    def first(self) -> int:
        return int(self.schedule[0])

    def next(self, interval: int, observed_tpi_ns: float, best_config: int) -> int:
        nxt = interval + 1
        if nxt >= len(self.schedule):
            return int(self.schedule[-1])
        return int(self.schedule[nxt])


class IntervalAdaptivePolicy(ConfigurationPolicy):
    """Predictor-driven policy with a confidence gate (Section 6)."""

    def __init__(
        self,
        predictor: ConfigurationPredictor,
        initial: int | None = None,
    ) -> None:
        self.predictor = predictor
        self._current = (
            initial if initial is not None else predictor.configurations[0]
        )
        if self._current not in predictor.configurations:
            raise ConfigurationError(
                f"initial configuration {self._current} unknown to predictor"
            )

    def first(self) -> int:
        return int(self._current)

    def next(self, interval: int, observed_tpi_ns: float, best_config: int) -> int:
        self.predictor.update(best_config)
        decision = self.predictor.should_switch(self._current)
        if decision is not None:
            self._current = decision.configuration
        return int(self._current)


@dataclass(frozen=True)
class PolicyOutcome:
    """Result of replaying one policy over an interval series set."""

    total_time_ns: float
    switch_overhead_ns: float
    n_switches: int
    n_intervals: int
    instructions: int
    chosen: np.ndarray

    @property
    def tpi_ns(self) -> float:
        """Achieved average TPI including all switching overhead."""
        return self.total_time_ns / self.instructions


def evaluate_policy(
    series: Mapping[int, IntervalSeries],
    policy: ConfigurationPolicy,
    switch_pause_cycles: int = DEFAULT_SWITCH_PAUSE_CYCLES,
    drain_cycles: int = 8,
) -> PolicyOutcome:
    """Replay ``policy`` against per-configuration interval TPI series.

    Every configuration change charges ``switch_pause_cycles`` of the
    *new* clock (the reliable clock-source swap) plus ``drain_cycles``
    of the old clock (emptying queue entries about to be disabled —
    an upper-bound constant, since occupancy varies).
    """
    if not series:
        raise SimulationError("no interval series supplied")
    lengths = {len(s) for s in series.values()}
    if len(lengths) != 1:
        raise SimulationError(f"series lengths disagree: {sorted(lengths)}")
    n_intervals = lengths.pop()
    interval_instr = {s.interval_instructions for s in series.values()}
    if len(interval_instr) != 1:
        raise SimulationError("interval lengths disagree across series")
    instr_per_interval = interval_instr.pop()

    windows = sorted(series)
    tpi_matrix = np.vstack([series[w].tpi_ns for w in windows])
    best_rows = np.argmin(tpi_matrix, axis=0)

    current = policy.first()
    if current not in series:
        raise SimulationError(f"policy chose unknown configuration {current}")
    total_ns = 0.0
    overhead_ns = 0.0
    n_switches = 0
    chosen = np.empty(n_intervals, dtype=np.int64)

    for interval in range(n_intervals):
        chosen[interval] = current
        row = windows.index(current)
        observed = float(tpi_matrix[row, interval])
        total_ns += observed * instr_per_interval
        best_config = windows[int(best_rows[interval])]
        nxt = policy.next(interval, observed, best_config)
        if nxt not in series:
            raise SimulationError(f"policy chose unknown configuration {nxt}")
        if nxt != current:
            pause = (
                switch_pause_cycles * series[nxt].cycle_time_ns
                + drain_cycles * series[current].cycle_time_ns
            )
            overhead_ns += pause
            total_ns += pause
            n_switches += 1
            current = nxt

    return PolicyOutcome(
        total_time_ns=total_ns,
        switch_overhead_ns=overhead_ns,
        n_switches=n_switches,
        n_intervals=n_intervals,
        instructions=n_intervals * instr_per_interval,
        chosen=chosen,
    )
