"""Power-mode model (paper Section 4.1).

Beyond performance, "the controllable clock frequency and hardware
disables of a CAP design provide several performance/power dissipation
design points that can be managed at runtime.  The lowest-power mode
can be enabled by setting all complexity-adaptive structures to their
minimum size, and selecting the slowest clock."  A single CAP design
can thereby be configured for environments from high-end servers to
low-power laptops.

The model is a standard activity proxy: dynamic power of a structure
scales with its *enabled* capacitance (enabled fraction of the
structure) times clock frequency, on top of a fixed-structure floor.
Relative units — the point is the ordering of modes, not watts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.structure import ComplexityAdaptiveStructure
from repro.errors import ConfigurationError


class PowerMode(enum.Enum):
    """Named operating points (Section 4.1's product environments)."""

    #: Everything enabled at the clock the configuration permits.
    HIGH_PERFORMANCE = "server"
    #: Mid-size structures — the laptop point.
    BALANCED = "laptop"
    #: Minimum structures, slowest clock — e.g. running from a UPS
    #: after a power failure.
    LOW_POWER = "ups"


@dataclass(frozen=True)
class PowerEstimate:
    """Relative power of one (configuration vector, clock) point."""

    configs: dict[str, Hashable]
    cycle_time_ns: float
    relative_power: float

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency implied by the cycle time."""
        return 1.0 / self.cycle_time_ns


class PowerModel:
    """Relative power across CAS configuration vectors.

    Parameters
    ----------
    structures:
        The adaptive structures.  Both CAS types in this library use
        numeric configurations proportional to enabled capacity
        (increments, entries), so the enabled fraction of a structure is
        its configuration value normalised by the largest one.
    fixed_fraction:
        Power floor from fixed structures, as a fraction of the total
        switched capacitance at full size.
    """

    def __init__(
        self,
        structures: tuple[ComplexityAdaptiveStructure, ...],
        fixed_fraction: float = 0.4,
    ) -> None:
        if not structures:
            raise ConfigurationError("power model needs at least one structure")
        if not 0.0 <= fixed_fraction < 1.0:
            raise ConfigurationError("fixed fraction must be in [0, 1)")
        self.structures = structures
        self.fixed_fraction = fixed_fraction

    def _enabled_fraction(self, cas: ComplexityAdaptiveStructure, config: Hashable) -> float:
        configs = tuple(cas.configurations())
        cas.validate(config)
        # Configurations are sizes (increments or entries): numeric and
        # proportional to enabled capacity.
        largest = max(float(c) for c in configs)
        return float(config) / largest

    def estimate(
        self,
        configs: Mapping[str, Hashable],
        cycle_time_ns: float,
    ) -> PowerEstimate:
        """Relative power for a configuration vector at a chosen clock.

        The clock may be *slower* than the configuration permits (power
        management deliberately underclocks); it may not be faster.
        """
        adaptive_share = (1.0 - self.fixed_fraction) / len(self.structures)
        switched = self.fixed_fraction
        min_period = 0.0
        for cas in self.structures:
            if cas.name not in configs:
                raise ConfigurationError(f"missing configuration for {cas.name!r}")
            config = configs[cas.name]
            min_period = max(min_period, cas.delay_ns(config))
            switched += adaptive_share * self._enabled_fraction(cas, config)
        if cycle_time_ns < min_period:
            raise ConfigurationError(
                f"clock period {cycle_time_ns} ns is faster than the slowest "
                f"structure permits ({min_period} ns)"
            )
        frequency = 1.0 / cycle_time_ns
        return PowerEstimate(
            configs=dict(configs),
            cycle_time_ns=cycle_time_ns,
            relative_power=switched * frequency,
        )

    def mode_estimate(self, mode: PowerMode) -> PowerEstimate:
        """Estimate one named operating point."""
        if mode is PowerMode.HIGH_PERFORMANCE:
            configs = {c.name: c.slowest_configuration() for c in self.structures}
        elif mode is PowerMode.LOW_POWER:
            configs = {c.name: c.fastest_configuration() for c in self.structures}
        else:
            configs = {}
            for cas in self.structures:
                options = tuple(cas.configurations())
                configs[cas.name] = options[len(options) // 2]
        min_period = max(
            cas.delay_ns(configs[cas.name]) for cas in self.structures
        )
        slowest = max(
            cas.delay_ns(cas.slowest_configuration()) for cas in self.structures
        )
        if mode is PowerMode.LOW_POWER:
            # slowest predetermined clock: the one sized for the largest
            # configuration, deliberately selected while running small
            return self.estimate(configs, slowest)
        if mode is PowerMode.BALANCED:
            # laptops trade some of the permitted clock away as well
            return self.estimate(configs, (min_period + slowest) / 2.0)
        return self.estimate(configs, min_period)
