"""TPI aggregation and comparison metrics.

The paper's headline numbers are arithmetic-mean TPI (and TPImiss)
reductions of the process-level adaptive configuration relative to the
best-performing conventional configuration, reported per application
and as a suite average.  This module holds those aggregations plus the
small numeric helpers shared by the experiment harnesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.workloads.profiles import BenchmarkProfile


def reduction_percent(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``.

    Positive when ``improved`` is smaller (better).

    >>> round(reduction_percent(2.0, 1.0), 1)
    50.0
    """
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return (baseline - improved) / baseline * 100.0


def speedup(baseline: float, improved: float) -> float:
    """Ratio of baseline to improved time (``> 1`` means faster)."""
    if improved <= 0:
        raise ReproError(f"improved must be positive, got {improved}")
    return baseline / improved


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ReproError("geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class SweepResult:
    """One (configuration, performance) point of a structure sweep.

    Every complexity-adaptive structure — cache boundary, issue-queue
    size, TLB fast section, predictor table — reports its sweep in this
    shape, so the experiment engine and the comparison machinery can
    drive any of them generically.  ``ipc`` is the *effective* IPC
    implied by the total TPI (``cycle_time_ns / tpi_ns``), which folds
    every stall source the structure models into one number.
    """

    config: int
    tpi_ns: float
    ipc: float
    cycle_time_ns: float

    def __post_init__(self) -> None:
        if self.tpi_ns <= 0 or self.cycle_time_ns <= 0:
            raise ReproError("sweep point needs positive TPI and cycle time")


@runtime_checkable
class StructureSweep(Protocol):
    """Protocol every structure-sweep implementation satisfies.

    A sweep maps a workload (a calibrated
    :class:`~repro.workloads.profiles.BenchmarkProfile`) to a
    :class:`SweepResult` per configuration.  Implementations for the
    four structures live in :mod:`repro.engine.sweeps`; the experiment
    engine fans their cells out and assembles the results, so a sweep
    evaluated at ``--jobs 1`` and ``--jobs N`` is bitwise identical.
    """

    #: Short structure identifier ("dcache", "iqueue", "tlb", "bpred").
    structure: str

    def configurations(self) -> tuple[int, ...]:
        """Every configuration the sweep evaluates, fastest first."""
        ...  # pragma: no cover - protocol

    def sweep(self, profile: "BenchmarkProfile") -> dict[int, SweepResult]:
        """Evaluate every configuration for one application."""
        ...  # pragma: no cover - protocol

    def best(self, profile: "BenchmarkProfile") -> SweepResult:
        """The TPI-minimising configuration for one application."""
        ...  # pragma: no cover - protocol


def best_sweep_result(results: Mapping[int, SweepResult]) -> SweepResult:
    """The TPI-minimising point of a sweep (shared `best` helper)."""
    if not results:
        raise ReproError("cannot pick the best point of an empty sweep")
    return min(results.values(), key=lambda r: r.tpi_ns)


@dataclass(frozen=True)
class TpiComparison:
    """Per-application conventional-versus-adaptive comparison.

    ``conventional`` and ``adaptive`` map application name to TPI (ns).
    The conventional column is evaluated at a single fixed
    configuration (the best overall one); the adaptive column at each
    application's own best configuration.
    """

    metric_name: str
    conventional: Mapping[str, float]
    adaptive: Mapping[str, float]

    def __post_init__(self) -> None:
        if set(self.conventional) != set(self.adaptive):
            raise ReproError("comparison columns cover different applications")
        if not self.conventional:
            raise ReproError("comparison is empty")

    @property
    def applications(self) -> tuple[str, ...]:
        """Application names in insertion order of the conventional column."""
        return tuple(self.conventional)

    def average_conventional(self) -> float:
        """Arithmetic-mean metric of the conventional configuration."""
        return sum(self.conventional.values()) / len(self.conventional)

    def average_adaptive(self) -> float:
        """Arithmetic-mean metric of the adaptive approach."""
        return sum(self.adaptive.values()) / len(self.adaptive)

    def average_reduction_percent(self) -> float:
        """Suite-average percent reduction (the paper's headline form)."""
        return reduction_percent(self.average_conventional(), self.average_adaptive())

    def per_app_reduction_percent(self) -> dict[str, float]:
        """Percent reduction for each application."""
        return {
            app: reduction_percent(self.conventional[app], self.adaptive[app])
            for app in self.applications
        }

    def biggest_winners(self, n: int = 3) -> tuple[str, ...]:
        """Applications with the largest reductions, best first."""
        per_app = self.per_app_reduction_percent()
        return tuple(sorted(per_app, key=per_app.__getitem__, reverse=True)[:n])

    def never_worse(self, tolerance: float = 1e-9) -> bool:
        """True when adaptivity never loses to the conventional config.

        Holds by construction for process-level adaptivity whenever the
        conventional configuration is in the adaptive search space.
        """
        return all(
            self.adaptive[app] <= self.conventional[app] + tolerance
            for app in self.applications
        )
