"""TPI aggregation and comparison metrics.

The paper's headline numbers are arithmetic-mean TPI (and TPImiss)
reductions of the process-level adaptive configuration relative to the
best-performing conventional configuration, reported per application
and as a suite average.  This module holds those aggregations plus the
small numeric helpers shared by the experiment harnesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ReproError


def reduction_percent(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``.

    Positive when ``improved`` is smaller (better).

    >>> round(reduction_percent(2.0, 1.0), 1)
    50.0
    """
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return (baseline - improved) / baseline * 100.0


def speedup(baseline: float, improved: float) -> float:
    """Ratio of baseline to improved time (``> 1`` means faster)."""
    if improved <= 0:
        raise ReproError(f"improved must be positive, got {improved}")
    return baseline / improved


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ReproError("geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class TpiComparison:
    """Per-application conventional-versus-adaptive comparison.

    ``conventional`` and ``adaptive`` map application name to TPI (ns).
    The conventional column is evaluated at a single fixed
    configuration (the best overall one); the adaptive column at each
    application's own best configuration.
    """

    metric_name: str
    conventional: Mapping[str, float]
    adaptive: Mapping[str, float]

    def __post_init__(self) -> None:
        if set(self.conventional) != set(self.adaptive):
            raise ReproError("comparison columns cover different applications")
        if not self.conventional:
            raise ReproError("comparison is empty")

    @property
    def applications(self) -> tuple[str, ...]:
        """Application names in insertion order of the conventional column."""
        return tuple(self.conventional)

    def average_conventional(self) -> float:
        """Arithmetic-mean metric of the conventional configuration."""
        return sum(self.conventional.values()) / len(self.conventional)

    def average_adaptive(self) -> float:
        """Arithmetic-mean metric of the adaptive approach."""
        return sum(self.adaptive.values()) / len(self.adaptive)

    def average_reduction_percent(self) -> float:
        """Suite-average percent reduction (the paper's headline form)."""
        return reduction_percent(self.average_conventional(), self.average_adaptive())

    def per_app_reduction_percent(self) -> dict[str, float]:
        """Percent reduction for each application."""
        return {
            app: reduction_percent(self.conventional[app], self.adaptive[app])
            for app in self.applications
        }

    def biggest_winners(self, n: int = 3) -> tuple[str, ...]:
        """Applications with the largest reductions, best first."""
        per_app = self.per_app_reduction_percent()
        return tuple(sorted(per_app, key=per_app.__getitem__, reverse=True)[:n])

    def never_worse(self, tolerance: float = 1e-9) -> bool:
        """True when adaptivity never loses to the conventional config.

        Holds by construction for process-level adaptivity whenever the
        conventional configuration is in the adaptive search space.
        """
        return all(
            self.adaptive[app] <= self.conventional[app] + tolerance
            for app in self.applications
        )
