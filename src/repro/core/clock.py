"""The dynamic clock of a Complexity-Adaptive Processor.

The paper's clocking scheme (Figures 4 and 5): several clock sources
feed a selector through clock-hold logic, analogous to scan designs
that stop one clock and reliably start another.  The set of available
clock speeds is *predetermined* from worst-case timing analysis of
every fixed structure and every combination of CAS configurations —
there is no continuous frequency scaling, only selection among the
precomputed points.  Switching clock sources "may require tens of
cycles to pause the active clock and enable the new clock".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.structure import ComplexityAdaptiveStructure, FixedStructure
from repro.errors import ConfigurationError

#: Default clock-switch pause, in cycles of the *new* clock.  The paper
#: estimates "tens of cycles"; 30 is the midpoint we charge.
DEFAULT_SWITCH_PAUSE_CYCLES: int = 30


@dataclass(frozen=True)
class ClockSwitch:
    """Record of one clock-source change."""

    old_cycle_ns: float
    new_cycle_ns: float
    pause_cycles: int

    @property
    def pause_ns(self) -> float:
        """Wall-clock cost of the switch."""
        return self.pause_cycles * self.new_cycle_ns


class DynamicClock:
    """Selects the processor clock from structure delays.

    Parameters
    ----------
    fixed_structures:
        Conventional structures whose delays floor the cycle time.
    adaptive_structures:
        The CAS set; the cycle time for a configuration vector is the
        maximum delay over all structures.
    switch_pause_cycles:
        Cycles the pipeline is held while swapping clock sources.
    """

    def __init__(
        self,
        fixed_structures: Sequence[FixedStructure] = (),
        adaptive_structures: Sequence[ComplexityAdaptiveStructure] = (),
        switch_pause_cycles: int = DEFAULT_SWITCH_PAUSE_CYCLES,
    ) -> None:
        if switch_pause_cycles < 0:
            raise ConfigurationError("switch pause must be non-negative")
        self.fixed_structures = tuple(fixed_structures)
        self.adaptive_structures = tuple(adaptive_structures)
        self.switch_pause_cycles = switch_pause_cycles
        self._history: list[ClockSwitch] = []

    def cycle_time_ns(self, configs: Mapping[str, Hashable] | None = None) -> float:
        """Cycle time for a configuration vector.

        ``configs`` maps CAS name to configuration; omitted structures
        use their current configuration.
        """
        configs = dict(configs or {})
        delays = [fs.delay_ns for fs in self.fixed_structures]
        for cas in self.adaptive_structures:
            config = configs.pop(cas.name, cas.configuration)
            cas.validate(config)
            delays.append(cas.delay_ns(config))
        if configs:
            raise ConfigurationError(f"unknown structures in config vector: {sorted(configs)}")
        if not delays:
            raise ConfigurationError("clock has no structures to time")
        return max(delays)

    def available_speeds_ns(self) -> tuple[float, ...]:
        """All predetermined clock periods, fastest first.

        Enumerates the cross product of CAS configurations — the
        worst-case timing analysis a CAP design performs up front.
        """
        periods = {self.cycle_time_ns(dict(zip(names, combo)))
                   for names, combo in self._config_product()}
        return tuple(sorted(periods))

    def _config_product(self):
        names = tuple(cas.name for cas in self.adaptive_structures)
        combos: list[tuple] = [()]
        for cas in self.adaptive_structures:
            combos = [c + (cfg,) for c in combos for cfg in cas.configurations()]
        for combo in combos:
            yield names, combo

    def switch(self, old_cycle_ns: float, new_cycle_ns: float) -> ClockSwitch:
        """Record a clock-source change and return its cost.

        Selecting the same period is free — the clock keeps running.
        """
        # Identity check, not arithmetic: both operands are entries of
        # the same predetermined clock table, so equality is exact.
        pause = (
            0
            if old_cycle_ns == new_cycle_ns  # repro: noqa[RPR008]
            else self.switch_pause_cycles
        )
        event = ClockSwitch(
            old_cycle_ns=old_cycle_ns, new_cycle_ns=new_cycle_ns, pause_cycles=pause
        )
        if pause:
            self._history.append(event)
        return event

    @property
    def switch_history(self) -> tuple[ClockSwitch, ...]:
        """All non-trivial clock switches performed so far."""
        return tuple(self._history)

    @property
    def total_switch_overhead_ns(self) -> float:
        """Accumulated wall-clock time spent paused for clock switches."""
        return sum(s.pause_ns for s in self._history)
