"""The Configuration Manager (paper Figure 5).

Controls the organisation of each complexity-adaptive structure and the
clock speed of the processor at appropriate execution points.  The
paper's evaluation uses a simple **process-level adaptive** scheme: the
configuration is fixed for the duration of each application (chosen by
a CAP compiler or runtime environment) and the configuration registers
are saved/restored by the operating system on context switches.

:class:`ConfigurationManager` implements that scheme over any CAS: given
a per-configuration evaluation function (TPI), it selects the argmin,
applies it (paying cleanup and clock-switch costs), and keeps the
per-process configuration-register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.clock import DynamicClock
from repro.core.structure import ComplexityAdaptiveStructure
from repro.errors import ConfigurationError
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.robust.guardrails import TpiWatchdog, WatchdogVerdict


@dataclass(frozen=True)
class ConfigurationDecision:
    """Outcome of one process-level configuration choice."""

    process: str
    structure: str
    configuration: Hashable
    predicted_tpi_ns: float
    cycle_time_ns: float
    evaluated: dict[Hashable, float] = field(default_factory=dict)


class ConfigurationManager:
    """Process-level adaptive configuration management."""

    def __init__(
        self,
        clock: DynamicClock,
        structures: tuple[ComplexityAdaptiveStructure, ...],
        watchdog: TpiWatchdog | None = None,
    ) -> None:
        if not structures:
            raise ConfigurationError("manager needs at least one adaptive structure")
        names = [s.name for s in structures]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate structure names: {names}")
        self.clock = clock
        self.structures = {s.name: s for s in structures}
        self.watchdog = watchdog if watchdog is not None else TpiWatchdog()
        #: Per-process configuration registers (saved/restored by the OS
        #: on context switches in the paper's scheme).
        self._registers: dict[str, dict[str, Hashable]] = {}
        self._decisions: list[ConfigurationDecision] = []
        #: Most recent decision per (process, structure) — what
        #: :meth:`report_achieved` compares achieved TPI against.
        self._latest: dict[tuple[str, str], ConfigurationDecision] = {}

    def select_for_process(
        self,
        process: str,
        structure: str,
        evaluate_tpi_ns: Callable[[Hashable], float],
    ) -> ConfigurationDecision:
        """Choose the TPI-minimising configuration for one process.

        ``evaluate_tpi_ns`` plays the role of the CAP compiler / profiling
        runtime: it predicts the process's TPI under each candidate
        configuration.
        """
        cas = self._structure(structure)
        tracer = obs.current_tracer()
        evaluated: dict[Hashable, float] = {}
        for cfg in cas.configurations():
            with tracer.span(
                "candidate", level="candidate",
                process=process, structure=structure, configuration=cfg,
            ) as sp:
                tpi_ns = evaluate_tpi_ns(cfg)
                sp.set(predicted_tpi_ns=tpi_ns)
            evaluated[cfg] = tpi_ns
        best = min(evaluated, key=evaluated.__getitem__)
        decision = ConfigurationDecision(
            process=process,
            structure=structure,
            configuration=best,
            predicted_tpi_ns=evaluated[best],
            cycle_time_ns=self.clock.cycle_time_ns({structure: best}),
            evaluated=evaluated,
        )
        self._registers.setdefault(process, {})[structure] = best
        self._decisions.append(decision)
        self._latest[(process, structure)] = decision
        metrics().counter(
            "repro_manager_decisions_total",
            "process-level configuration decisions made",
        ).inc(structure=structure)
        tracer.event(
            "manager.decision",
            process=process, structure=structure, configuration=best,
            predicted_tpi_ns=decision.predicted_tpi_ns,
            cycle_time_ns=decision.cycle_time_ns,
        )
        return decision

    def context_switch(self, process: str) -> float:
        """Restore ``process``'s configuration registers; return the
        wall-clock overhead (ns) of the reconfiguration."""
        registers = self._registers.get(process)
        if registers is None:
            raise ConfigurationError(f"no configuration registers saved for {process!r}")
        with obs.span("context_switch", level="section", process=process) as sp:
            overhead_ns = 0.0
            for structure, config in registers.items():
                overhead_ns += self.apply(structure, config, trigger="context_switch")
            sp.set(overhead_ns=overhead_ns)
        metrics().counter(
            "repro_context_switches_total", "process context switches replayed"
        ).inc()
        return overhead_ns

    def apply(self, structure: str, config: Hashable, trigger: str = "apply") -> float:
        """Reconfigure one structure now; return overhead in ns.

        ``trigger`` names why the reconfiguration fired — it is recorded
        on the emitted ``reconfigure`` trace span and surfaced by
        ``repro obs summarize`` as the per-trigger breakdown.
        """
        cas = self._structure(structure)
        with obs.span(
            "reconfigure", level="reconfigure",
            structure=structure, trigger=trigger,
            from_config=cas.configuration, to_config=config,
        ) as sp:
            old_cycle = self.clock.cycle_time_ns()
            cost = cas.reconfigure(config)
            new_cycle = self.clock.cycle_time_ns()
            overhead_ns = cost.cleanup_cycles * old_cycle
            if cost.requires_clock_switch:
                overhead_ns += self.clock.switch(old_cycle, new_cycle).pause_ns
            sp.set(
                overhead_ns=overhead_ns,
                cleanup_cycles=cost.cleanup_cycles,
                clock_switch=cost.requires_clock_switch,
                cycle_time_ns=new_cycle,
            )
        metrics().gauge(
            "repro_clock_cycle_ns", "cycle time after the latest reconfiguration"
        ).set(new_cycle)
        return overhead_ns

    def report_achieved(
        self, process: str, structure: str, achieved_tpi_ns: float
    ) -> WatchdogVerdict:
        """Feed a selection's *achieved* TPI to the regression watchdog.

        Compares against the latest decision's prediction.  On a
        regression beyond the watchdog tolerance, falls back to the
        best-known-safe configuration — a currently-reachable one that
        has *measured* strictly better — applying it immediately (with
        full reconfiguration costs) and updating the process's
        configuration registers.  Without such a configuration the
        regression is recorded but nothing moves: a blind fallback could
        make things worse.
        """
        decision = self._latest.get((process, structure))
        if decision is None:
            raise ConfigurationError(
                f"no decision on record for process {process!r} / {structure!r}"
            )
        cas = self._structure(structure)
        verdict = self.watchdog.check(
            process,
            structure,
            decision.configuration,
            decision.predicted_tpi_ns,
            achieved_tpi_ns,
            tuple(cas.configurations()),
        )
        if verdict.regression:
            obs.event(
                "robust.tpi_regression",
                process=process, structure=structure,
                configuration=decision.configuration,
                predicted_tpi_ns=decision.predicted_tpi_ns,
                achieved_tpi_ns=achieved_tpi_ns,
                tolerance=self.watchdog.tolerance,
            )
            metrics().counter(
                "repro_robust_watchdog_regressions_total",
                "selections whose achieved TPI belied their prediction",
            ).inc(structure=structure)
            if verdict.fallback is not None:
                predicted = self.watchdog.achieved_history(process, structure)[
                    verdict.fallback
                ]
                self.apply(structure, verdict.fallback, trigger="watchdog_fallback")
                self._registers.setdefault(process, {})[structure] = verdict.fallback
                fallback_decision = ConfigurationDecision(
                    process=process,
                    structure=structure,
                    configuration=verdict.fallback,
                    predicted_tpi_ns=predicted,
                    cycle_time_ns=self.clock.cycle_time_ns(),
                )
                self._latest[(process, structure)] = fallback_decision
                obs.event(
                    "robust.watchdog_fallback",
                    process=process, structure=structure,
                    from_config=decision.configuration,
                    to_config=verdict.fallback,
                    predicted_tpi_ns=predicted,
                )
                metrics().counter(
                    "repro_robust_watchdog_fallbacks_total",
                    "watchdog fallbacks to the best-known-safe configuration",
                ).inc(structure=structure)
        return verdict

    def ensure_valid(self, process: str) -> dict[str, tuple[Hashable, Hashable]]:
        """Remap any saved registers that hardware faults have masked.

        Returns ``{structure: (old, new)}`` for every register that had
        to move.  Under the contiguous-truncation capability mask the
        nearest reachable stand-in is the largest surviving
        configuration.  Registers are updated in place; the
        reconfiguration itself happens at the next
        :meth:`context_switch` / :meth:`apply`, as usual.
        """
        registers = self._registers.get(process)
        if registers is None:
            raise ConfigurationError(
                f"no configuration registers saved for {process!r}"
            )
        remapped: dict[str, tuple[Hashable, Hashable]] = {}
        for structure, config in registers.items():
            cas = self._structure(structure)
            reachable = tuple(cas.configurations())
            if config in reachable:
                continue
            replacement = reachable[-1]
            registers[structure] = replacement
            remapped[structure] = (config, replacement)
            obs.event(
                "robust.config_remapped",
                process=process, structure=structure,
                from_config=config, to_config=replacement,
            )
            metrics().counter(
                "repro_robust_remaps_total",
                "saved configuration registers remapped off masked configs",
            ).inc(structure=structure)
        return remapped

    def saved_configuration(self, process: str, structure: str) -> Hashable:
        """Read a process's saved configuration register."""
        try:
            return self._registers[process][structure]
        except KeyError:
            raise ConfigurationError(
                f"no saved configuration for process {process!r} / {structure!r}"
            ) from None

    @property
    def decisions(self) -> tuple[ConfigurationDecision, ...]:
        """All process-level decisions made so far."""
        return tuple(self._decisions)

    def _structure(self, name: str) -> ComplexityAdaptiveStructure:
        try:
            return self.structures[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown structure {name!r}; have {sorted(self.structures)}"
            ) from None
