"""Top-level Complexity-Adaptive Processor (paper Figure 5).

Composes the adaptive D-cache hierarchy, the adaptive instruction
queue, any fixed structures, the dynamic clock and the Configuration
Manager into one object — the thing the examples instantiate.

Note the composition caveat the paper raises in Section 5.4: when
several structures are adaptive at once, "the number of configurations
for a given structure might be limited due to larger delays in other
structures" — e.g. a large instruction queue floors the cycle time, so
shrinking the L1 below that floor buys no clock.  The
:meth:`effective_configurations` helper exposes exactly that
interaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

from repro.core.clock import DynamicClock
from repro.core.manager import ConfigurationManager
from repro.core.structure import FixedStructure

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.cache.adaptive import AdaptiveCacheHierarchy
    from repro.ooo.adaptive import AdaptiveInstructionQueue


class CapProcessor:
    """A processor with an adaptive D-cache and an adaptive issue queue."""

    def __init__(
        self,
        dcache: "AdaptiveCacheHierarchy | None" = None,
        iqueue: "AdaptiveInstructionQueue | None" = None,
        fixed_structures: Sequence[FixedStructure] = (),
        switch_pause_cycles: int = 30,
    ) -> None:
        from repro.cache.adaptive import AdaptiveCacheHierarchy
        from repro.ooo.adaptive import AdaptiveInstructionQueue

        self.dcache = dcache if dcache is not None else AdaptiveCacheHierarchy()
        self.iqueue = iqueue if iqueue is not None else AdaptiveInstructionQueue()
        self.clock = DynamicClock(
            fixed_structures=tuple(fixed_structures),
            adaptive_structures=(self.dcache, self.iqueue),
            switch_pause_cycles=switch_pause_cycles,
        )
        self.manager = ConfigurationManager(
            clock=self.clock, structures=(self.dcache, self.iqueue)
        )

    def cycle_time_ns(self, configs: Mapping[str, Hashable] | None = None) -> float:
        """Cycle time of the current (or a hypothetical) configuration."""
        return self.clock.cycle_time_ns(configs)

    def current_configuration(self) -> dict[str, Hashable]:
        """Configuration vector currently enabled."""
        return {
            self.dcache.name: self.dcache.configuration,
            self.iqueue.name: self.iqueue.configuration,
        }

    def effective_configurations(self, structure: str) -> tuple[Hashable, ...]:
        """Configurations of ``structure`` that actually change the clock.

        With the *other* structures at their current configurations,
        several settings of this structure can share a cycle time (the
        slowest other structure dominates); only the distinct-cycle-time
        prefix plus the largest shared setting are effective — a larger
        one among the shared group gives strictly more capacity for the
        same clock, so the smaller ones are dominated for performance
        (they still matter for power).
        """
        cas = self.manager.structures[structure]
        periods: dict[Hashable, float] = {
            cfg: self.clock.cycle_time_ns({structure: cfg})
            for cfg in cas.configurations()
        }
        effective: list[Hashable] = []
        seen_periods: dict[float, Hashable] = {}
        for cfg in sorted(periods, key=lambda c: (periods[c], -float(c))):
            period = periods[cfg]
            if period not in seen_periods:
                seen_periods[period] = cfg
                effective.append(cfg)
        return tuple(sorted(effective, key=float))

    def describe(self) -> str:
        """Multi-line summary used by the quickstart example."""
        lines = [
            "Complexity-Adaptive Processor",
            f"  D-cache boundary: {self.dcache.configuration} increments "
            f"(L1 {self.dcache.configuration * self.dcache.geometry.increment_bytes // 1024} KB)",
            f"  Issue queue:      {self.iqueue.configuration} entries",
            f"  Cycle time:       {self.cycle_time_ns():.3f} ns "
            f"({1.0 / self.cycle_time_ns():.2f} GHz)",
        ]
        speeds = ", ".join(f"{p:.3f}" for p in self.clock.available_speeds_ns()[:8])
        lines.append(f"  Clock periods available (first 8): {speeds} ns")
        return "\n".join(lines)
