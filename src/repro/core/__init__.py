"""The paper's primary contribution: the Complexity-Adaptive Processor.

This subpackage holds the machinery that turns the cache and queue
simulators into a CAP:

* :mod:`repro.core.structure` — fixed (FS) and complexity-adaptive
  (CAS) hardware structure abstractions.
* :mod:`repro.core.clock` — the dynamic clock: per-configuration
  frequency table derived from worst-case structure delays, plus the
  cost of reliably switching clock sources.
* :mod:`repro.core.monitor` — performance-monitoring counters read by
  configuration-management heuristics.
* :mod:`repro.core.manager` — the Configuration Manager with the
  paper's process-level adaptive policy.
* :mod:`repro.core.policies` — static, oracle and interval-adaptive
  configuration policies (Section 6).
* :mod:`repro.core.predictor` — pattern-based next-configuration
  predictor with confidence estimation (Section 6).
* :mod:`repro.core.metrics` — TPI aggregation and reduction reporting.
* :mod:`repro.core.power` — the power-mode model of Section 4.1.
* :mod:`repro.core.processor` — ties cache CAS + queue CAS + clock into
  one top-level object.
"""

from repro.core.structure import (
    ComplexityAdaptiveStructure,
    FixedStructure,
    ReconfigurationCost,
)
from repro.core.clock import ClockSwitch, DynamicClock
from repro.core.monitor import IntervalSample, PerformanceMonitor
from repro.core.manager import ConfigurationDecision, ConfigurationManager
from repro.core.policies import (
    ConfigurationPolicy,
    IntervalAdaptivePolicy,
    OraclePolicy,
    StaticPolicy,
)
from repro.core.predictor import ConfigurationPredictor, PredictorStats
from repro.core.metrics import TpiComparison, geometric_mean, reduction_percent
from repro.core.power import PowerModel, PowerMode
from repro.core.processor import CapProcessor
from repro.core.controller import ControllerConfig, ControllerOutcome, OnlineController, run_online
from repro.core.multiprogram import MultiprogramResult, ProcessSpec, run_multiprogrammed
from repro.core.asynchronous import AsyncAccessProfile, async_cache_profile

__all__ = [
    "FixedStructure",
    "ComplexityAdaptiveStructure",
    "ReconfigurationCost",
    "DynamicClock",
    "ClockSwitch",
    "PerformanceMonitor",
    "IntervalSample",
    "ConfigurationManager",
    "ConfigurationDecision",
    "ConfigurationPolicy",
    "StaticPolicy",
    "OraclePolicy",
    "IntervalAdaptivePolicy",
    "ConfigurationPredictor",
    "PredictorStats",
    "TpiComparison",
    "reduction_percent",
    "geometric_mean",
    "PowerModel",
    "PowerMode",
    "CapProcessor",
    "OnlineController",
    "ControllerConfig",
    "ControllerOutcome",
    "run_online",
    "ProcessSpec",
    "MultiprogramResult",
    "run_multiprogrammed",
    "AsyncAccessProfile",
    "async_cache_profile",
]
