"""Synthetic branch streams.

A stream mixes three static-branch populations, executed with Zipf
weighting (a few hot branches dominate, as in real codes):

* **biased** branches: taken with a fixed probability drawn near 0 or 1
  (loop back-edges, error checks) — any predictor gets these right;
* **patterned** branches: deterministic repeating outcome sequences
  (period 3-8) — correct with enough *history* and a table big enough
  to avoid aliasing, i.e. what gshare capacity buys;
* **noisy** branches: taken with probability near 0.5 — nobody
  predicts these, they only cause training noise and aliasing.

The per-application parameters derive from the suite: integer codes get
many static branches with a large patterned share; floating-point codes
few, heavily biased branches — which is why (as with the cache and
queue) some applications will favour a small, fast table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.profiles import BenchmarkProfile

#: Dynamic branch density (branches per instruction).
BRANCH_FRACTION: float = 0.18


@dataclass(frozen=True)
class BranchProfile:
    """Static-branch population of one application."""

    name: str
    n_static: int
    patterned_fraction: float
    noisy_fraction: float
    zipf_exponent: float
    seed: int

    def __post_init__(self) -> None:
        if self.n_static < 4:
            raise WorkloadError("need at least four static branches")
        if not 0.0 <= self.patterned_fraction + self.noisy_fraction <= 1.0:
            raise WorkloadError("population fractions must sum to at most 1")
        if self.zipf_exponent <= 0:
            raise WorkloadError("zipf exponent must be positive")


#: Per-application branch populations.  Integer codes are branchy and
#: pattern-rich; floating-point codes are loop-dominated and biased.
_INTEGER = dict(n_static=600, patterned_fraction=0.45, noisy_fraction=0.06,
                zipf_exponent=1.3)
_FLOATING = dict(n_static=150, patterned_fraction=0.15, noisy_fraction=0.03,
                 zipf_exponent=1.5)
_OVERRIDES: dict[str, dict] = {
    # gcc's huge static footprint: aliasing punishes small tables hard
    "gcc": dict(n_static=2000, patterned_fraction=0.50, noisy_fraction=0.06,
                zipf_exponent=1.15),
    "go": dict(n_static=1600, patterned_fraction=0.40, noisy_fraction=0.15,
               zipf_exponent=1.15),
    # tiny, loop-dominated kernels: a small table already predicts well
    "swim": dict(n_static=60, patterned_fraction=0.05, noisy_fraction=0.01,
                 zipf_exponent=1.7),
    "tomcatv": dict(n_static=60, patterned_fraction=0.05, noisy_fraction=0.01,
                    zipf_exponent=1.7),
    "mgrid": dict(n_static=80, patterned_fraction=0.05, noisy_fraction=0.01,
                  zipf_exponent=1.7),
}


def branch_profile_for(profile: BenchmarkProfile) -> BranchProfile:
    """Derive the branch profile for one suite application."""
    params = _OVERRIDES.get(
        profile.name, _INTEGER if profile.domain == "integer" else _FLOATING
    )
    return BranchProfile(name=profile.name, seed=profile.seed + 9000, **params)


def generate_branch_trace(
    profile: BranchProfile, n_branches: int
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(pcs, outcomes)`` for ``profile``.

    Deterministic in the profile's seed.  The dynamic stream is
    *template structured*: execution walks repeating loop bodies
    (sequences of static branches), staying in one loop nest for many
    iterations before moving to the next — so the global history a
    gshare predictor sees is meaningful, as in real code, rather than
    noise.  Patterned branches use short periods (2 or 4) so that the
    number of distinct (pc, history) contexts scales with the loop-body
    length — the capacity pressure that makes table size matter.
    """
    if n_branches <= 0:
        raise WorkloadError(f"n_branches must be positive, got {n_branches}")
    rng = np.random.default_rng(profile.seed)
    n = profile.n_static

    # population assignment per static branch
    kinds = rng.random(n)
    patterned = kinds < profile.patterned_fraction
    noisy = (~patterned) & (
        kinds < profile.patterned_fraction + profile.noisy_fraction
    )
    bias = np.where(rng.random(n) < 0.5, rng.uniform(0.95, 0.995, n),
                    rng.uniform(0.005, 0.05, n))
    periods = rng.choice((2, 4), size=n)
    patterns = rng.random((n, 4)) < 0.6  # per-branch repeating sequence

    # Zipf-weighted loop bodies: execution repeats a hot loop body many
    # times, then moves to another
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -profile.zipf_exponent
    weights /= weights.sum()
    n_templates = 4
    body_len = max(8, n // 12)
    templates = [
        rng.choice(n, size=body_len, p=weights) for _ in range(n_templates)
    ]

    statics = np.empty(n_branches, dtype=np.int64)
    filled = 0
    while filled < n_branches:
        body = templates[int(rng.integers(0, n_templates))]
        repeats = int(rng.integers(10, 40))
        chunk = np.tile(body, repeats)[: n_branches - filled]
        statics[filled : filled + len(chunk)] = chunk
        filled += len(chunk)

    # per-branch execution counters drive the pattern position
    occurrence = np.zeros(n, dtype=np.int64)
    outcomes = np.empty(n_branches, dtype=bool)
    draws = rng.random(n_branches)
    for i, b in enumerate(statics.tolist()):
        k = occurrence[b]
        occurrence[b] = k + 1
        if patterned[b]:
            outcomes[i] = patterns[b, k % periods[b]]
        elif noisy[b]:
            outcomes[i] = draws[i] < 0.5
        else:
            outcomes[i] = draws[i] < bias[b]

    # spread static branches across the address space so table indices
    # depend on the table size under test
    pcs = (statics * 2654435761) & 0xFFFFFFFF
    return pcs.astype(np.int64), outcomes
