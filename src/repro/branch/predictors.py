"""Two-bit-counter branch predictors: bimodal and gshare.

Both index a table of 2-bit saturating counters; gshare additionally
XORs a global-history register into the index, which captures
pattern-correlated branches but increases destructive aliasing when the
table is too small — the effect that makes table size matter.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError, SimulationError


class PredictorKind(enum.Enum):
    """Supported predictor organisations."""

    BIMODAL = "bimodal"
    GSHARE = "gshare"


class _CounterTable:
    """A table of 2-bit saturating counters (initialised weakly taken)."""

    def __init__(self, n_entries: int) -> None:
        if n_entries < 2 or n_entries & (n_entries - 1):
            raise ConfigurationError(
                f"table entries must be a power of two >= 2, got {n_entries}"
            )
        self.n_entries = n_entries
        self._counters = np.full(n_entries, 2, dtype=np.int8)

    def predict(self, index: int) -> bool:
        return bool(self._counters[index] >= 2)

    def update(self, index: int, taken: bool) -> None:
        c = self._counters[index]
        if taken:
            if c < 3:
                self._counters[index] = c + 1
        elif c > 0:
            self._counters[index] = c - 1


class BimodalPredictor:
    """PC-indexed 2-bit counter table."""

    def __init__(self, n_entries: int) -> None:
        self._table = _CounterTable(n_entries)
        self._mask = n_entries - 1

    @property
    def n_entries(self) -> int:
        """Table capacity."""
        return self._table.n_entries

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train on the outcome.

        Returns whether the prediction was correct.
        """
        index = pc & self._mask
        prediction = self._table.predict(index)
        self._table.update(index, taken)
        return prediction == taken

    def run(self, pcs: np.ndarray, outcomes: np.ndarray) -> float:
        """Misprediction rate over a whole branch stream."""
        return _run_stream(self, pcs, outcomes)


class GsharePredictor:
    """Global-history-XOR-PC indexed 2-bit counter table."""

    def __init__(self, n_entries: int, history_bits: int | None = None) -> None:
        self._table = _CounterTable(n_entries)
        self._mask = n_entries - 1
        index_bits = n_entries.bit_length() - 1
        self.history_bits = history_bits if history_bits is not None else index_bits
        if self.history_bits < 1:
            raise ConfigurationError("gshare needs at least one history bit")
        self._history = 0
        self._history_mask = (1 << self.history_bits) - 1

    @property
    def n_entries(self) -> int:
        """Table capacity."""
        return self._table.n_entries

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and shift the global history register."""
        index = (pc ^ self._history) & self._mask
        prediction = self._table.predict(index)
        self._table.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return prediction == taken

    def run(self, pcs: np.ndarray, outcomes: np.ndarray) -> float:
        """Misprediction rate over a whole branch stream."""
        return _run_stream(self, pcs, outcomes)


def _run_stream(predictor, pcs: np.ndarray, outcomes: np.ndarray) -> float:
    if len(pcs) != len(outcomes):
        raise SimulationError("pc and outcome streams must have equal length")
    if len(pcs) == 0:
        raise SimulationError("empty branch stream")
    wrong = 0
    predict_and_update = predictor.predict_and_update
    for pc, taken in zip(pcs.tolist(), outcomes.tolist()):
        if not predict_and_update(pc, bool(taken)):
            wrong += 1
    return wrong / len(pcs)


def make_predictor(kind: PredictorKind, n_entries: int):
    """Factory used by the adaptive wrapper."""
    if kind is PredictorKind.BIMODAL:
        return BimodalPredictor(n_entries)
    return GsharePredictor(n_entries)
