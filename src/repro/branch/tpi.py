"""TPI evaluation for the adaptive branch predictor.

The predictor table is read every fetch, so (as with the queue's
wakeup+select) its lookup bounds the cycle time, floored by the rest of
the core.  The IPC side comes from misprediction stalls: every
mispredicted branch flushes the frontend for a fixed penalty.

``TPI(n) = cycle(n) * (1 / base_ipc + branch_fraction *
misprediction_rate(n) * penalty_cycles)``

Misprediction rates are *measured* by running the real predictor over
the application's synthetic branch stream — not modelled analytically —
so aliasing and warm-up effects are captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.predictors import PredictorKind, make_predictor
from repro.branch.timing import BranchTimingModel
from repro.branch.workloads import BRANCH_FRACTION, BranchProfile, generate_branch_trace
from repro.errors import RemovedApiError, WorkloadError

#: Miss-free pipeline efficiency, as in the cache study.
BASE_IPC: float = 2.67

#: Frontend refill cost of a misprediction, in cycles.
MISPREDICT_PENALTY_CYCLES: int = 7

#: Core cycle-time floor (ns): the predictor is read in the fetch
#: stage of an aggressive (16-entry-queue-class) core.
CORE_CYCLE_FLOOR_NS: float = 0.40


@dataclass(frozen=True)
class BranchBreakdown:
    """TPI decomposition for one application at one table size."""

    n_entries: int
    cycle_time_ns: float
    misprediction_rate: float
    tpi_ns: float


@dataclass(frozen=True)
class BranchTpiModel:
    """Evaluates TPI across predictor table sizes."""

    timing: BranchTimingModel = field(default_factory=BranchTimingModel)
    kind: PredictorKind = PredictorKind.GSHARE
    base_ipc: float = BASE_IPC
    penalty_cycles: int = MISPREDICT_PENALTY_CYCLES
    branch_fraction: float = BRANCH_FRACTION
    core_floor_ns: float = CORE_CYCLE_FLOOR_NS

    def cycle_time_ns(self, n_entries: int) -> float:
        """Clock period with ``n_entries`` enabled."""
        return max(self.core_floor_ns, self.timing.lookup_time_ns(n_entries))

    def evaluate(
        self, profile: BranchProfile, n_entries: int, n_branches: int = 20_000
    ) -> BranchBreakdown:
        """Measure one (application, table size) point."""
        if n_branches <= 0:
            raise WorkloadError("n_branches must be positive")
        pcs, outcomes = generate_branch_trace(profile, n_branches)
        predictor = make_predictor(self.kind, n_entries)
        rate = predictor.run(pcs, outcomes)
        cycle = self.cycle_time_ns(n_entries)
        cpi = 1.0 / self.base_ipc + self.branch_fraction * rate * self.penalty_cycles
        return BranchBreakdown(
            n_entries=n_entries,
            cycle_time_ns=cycle,
            misprediction_rate=rate,
            tpi_ns=cycle * cpi,
        )

    def sweep_breakdowns(
        self, profile: BranchProfile, n_branches: int = 20_000
    ) -> dict[int, BranchBreakdown]:
        """Evaluate every configured table size."""
        return {
            s: self.evaluate(profile, s, n_branches) for s in self.timing.sizes
        }

    def sweep(self, *args: object, **kwargs: object) -> dict[int, BranchBreakdown]:
        """Removed alias of :meth:`sweep_breakdowns`.

        .. deprecated:: 1.1
        .. versionremoved:: 1.2
            The deprecation cycle is complete.  Query through
            :func:`repro.api.run_query` (the public surface), or call
            :meth:`sweep_breakdowns` for the raw breakdowns.
        """
        raise RemovedApiError(
            "BranchTpiModel.sweep was removed after its deprecation cycle; "
            "query through repro.api.run_query(OptimizationRequest('bpred', "
            "workload)) or call BranchTpiModel.sweep_breakdowns for raw "
            "breakdowns"
        )

    def best_size(
        self, profile: BranchProfile, n_branches: int = 20_000
    ) -> BranchBreakdown:
        """The TPI-minimising table size."""
        return min(
            self.sweep_breakdowns(profile, n_branches).values(),
            key=lambda b: b.tpi_ns,
        )
