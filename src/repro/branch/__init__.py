"""Complexity-adaptive branch predictor (a paper Section 4/7 extension).

The paper names branch predictor tables, alongside TLBs, as the next
structures to make complexity-adaptive: they are "regular RAM or
CAM-based structures [that] may easily exceed these integer queue
sizes, making them prime candidates for wire buffering strategies".  A
bigger pattern-history table predicts better (less aliasing, longer
history) but its longer global busses slow the clock — the same
IPC/clock-rate tradeoff as the cache and queue, decided here by
prediction accuracy instead of hit ratio.

Modules
-------
:mod:`repro.branch.predictors`
    Bimodal and gshare predictors over 2-bit saturating counters.
:mod:`repro.branch.workloads`
    Synthetic branch streams: biased and pattern-correlated static
    branches with Zipf-weighted execution.
:mod:`repro.branch.timing`
    Table size to lookup delay.
:mod:`repro.branch.tpi`
    TPI from cycle time and misprediction rate.
:mod:`repro.branch.adaptive`
    The CAS wrapper (configuration = enabled table entries).
"""

from repro.branch.predictors import BimodalPredictor, GsharePredictor, PredictorKind
from repro.branch.workloads import BranchProfile, branch_profile_for, generate_branch_trace
from repro.branch.timing import BranchTimingModel, PREDICTOR_TABLE_SIZES
from repro.branch.tpi import BranchTpiModel, BranchBreakdown
from repro.branch.adaptive import AdaptiveBranchPredictor

__all__ = [
    "BimodalPredictor",
    "GsharePredictor",
    "PredictorKind",
    "BranchProfile",
    "branch_profile_for",
    "generate_branch_trace",
    "BranchTimingModel",
    "PREDICTOR_TABLE_SIZES",
    "BranchTpiModel",
    "BranchBreakdown",
    "AdaptiveBranchPredictor",
]
