"""The branch predictor table as a complexity-adaptive structure.

The configuration is the enabled table size.  Shrinking disables the
upper banks (one index bit at a time); counters in the surviving banks
keep their training, but predictions that previously mapped to disabled
banks retrain — modelled as a modest cleanup cost (the counters are
2-bit, so retraining takes a couple of occurrences per branch, not a
pipeline drain).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.branch.predictors import PredictorKind, make_predictor
from repro.branch.timing import BranchTimingModel
from repro.core.structure import (
    ComplexityAdaptiveStructure,
    ReconfigurationCost,
    StructureRunResult,
)
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.obs.profile import profiled

#: Nominal cleanup charged for the retraining transient, in cycles.
RETRAIN_CLEANUP_CYCLES: int = 16


class AdaptiveBranchPredictor(ComplexityAdaptiveStructure[int]):
    """Complexity-adaptive predictor (configuration = table entries)."""

    name = "bpred"

    def __init__(
        self,
        timing: BranchTimingModel | None = None,
        initial_entries: int | None = None,
    ) -> None:
        self.timing = timing if timing is not None else BranchTimingModel()
        sizes = tuple(sorted(self.timing.sizes))
        self._current = initial_entries if initial_entries is not None else sizes[-1]
        self.validate(self._current)

    def _all_configurations(self) -> Sequence[int]:
        """Designed table sizes, smallest (fastest) first."""
        return tuple(sorted(self.timing.sizes))

    def delay_ns(self, config: int) -> float:
        """Critical path: the table read."""
        self.validate(config)
        return self.timing.lookup_time_ns(config)

    @property
    def configuration(self) -> int:
        """Currently enabled entries."""
        return self._current

    def reconfigure(self, config: int) -> ReconfigurationCost:
        """Resize the table, charging the retraining transient."""
        self.validate_reachable(config)
        changed = config != self._current
        obs.event(
            "structure.reconfigure", structure=self.name,
            from_config=self._current, to_config=config, changed=changed,
        )
        metrics().counter(
            "repro_reconfigurations_total", "CAS reconfigure() calls"
        ).inc(structure=self.name, changed=str(changed).lower())
        self._current = config
        return ReconfigurationCost(
            cleanup_cycles=RETRAIN_CLEANUP_CYCLES if changed else 0,
            requires_clock_switch=changed,
        )

    def run(
        self,
        pcs: np.ndarray,
        taken: np.ndarray,
        *,
        kind: PredictorKind = PredictorKind.GSHARE,
    ) -> StructureRunResult:
        """Predict a branch stream with the table at the current size.

        The predictor is freshly built (cold counters), matching the
        measurement methodology of the TPI sweep; ``stats`` carries the
        ``misprediction_rate`` and its complement ``accuracy``.
        """
        with obs.span(
            "structure.run", level="structure",
            structure=self.name, configuration=self._current,
            n_events=len(pcs),
        ), profiled(f"structure.run:{self.name}"):
            predictor = make_predictor(kind, self._current)
            rate = predictor.run(pcs, taken)
        metrics().counter(
            "repro_structure_runs_total", "adaptive-structure run() calls"
        ).inc(structure=self.name)
        return StructureRunResult(
            structure=self.name,
            configuration=self._current,
            n_events=len(pcs),
            stats={"misprediction_rate": rate, "accuracy": 1.0 - rate},
        )
