"""Branch predictor table timing.

A pattern-history table of ``n`` two-bit counters is a RAM array read
every fetch; its global word/bit lines follow the same square-root-area
layout rule and repeater methodology as every other structure here.
Halving the enabled table drops one index bit and shortens the matched
bus — the enable/disable granularity is therefore a factor of two, not
a fixed increment, which is why predictor sizes are powers of two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tech.cacti import best_bus_delay_ns, structure_height_mm
from repro.tech.parameters import TechnologyParameters, technology
from repro.units import ps

#: Enabled table sizes studied (entries of 2-bit counters).
PREDICTOR_TABLE_SIZES: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)

#: Decode + counter read + hysteresis mux, ps at 0.25 um.
_READ_BASE_PS: float = 300.0

#: The table is built from stacked 512-entry (128 B) banks, one
#: repeater-isolated group per bank — the configuration increment.
_BANK_ENTRIES: int = 512
_BANK_BYTES: int = _BANK_ENTRIES // 4


@dataclass(frozen=True)
class BranchTimingModel:
    """Lookup delay per enabled table size."""

    tech: TechnologyParameters = field(default_factory=lambda: technology(0.18))
    sizes: tuple[int, ...] = PREDICTOR_TABLE_SIZES

    def __post_init__(self) -> None:
        bad = [s for s in self.sizes if s < 2 or s & (s - 1)]
        if bad:
            raise ConfigurationError(f"table sizes must be powers of two: {bad}")

    def lookup_time_ns(self, n_entries: int) -> float:
        """Table read delay for ``n_entries`` 2-bit counters."""
        if n_entries not in self.sizes:
            raise ConfigurationError(
                f"size {n_entries} not in configured sizes {self.sizes}"
            )
        n_banks = max(1, n_entries // _BANK_ENTRIES)
        bus_mm = n_banks * structure_height_mm(_BANK_BYTES)
        return (
            ps(_READ_BASE_PS * self.tech.gate_delay_scale())
            + best_bus_delay_ns(bus_mm, self.tech)
        )

    def cycle_table(self) -> dict[int, float]:
        """Lookup delay for every configured size."""
        return {s: self.lookup_time_ns(s) for s in self.sizes}
