"""Synthetic D-cache reference streams (the Atom-trace substitute).

A trace is a mixture process: each reference picks a working-set
component (or the streaming source) by weight, then produces a byte
address within it:

* **uniform** components pick a random block — irregular reuse whose
  stack-distance distribution softens around the component size;
* **loop** components advance a cyclic sequential walk — classic LRU
  pathology with a sharp fit-or-thrash knee at the component size;
* the **streaming** source walks an unbounded region — pure compulsory
  misses.

Sequential sources touch each 32 B block ``refs_per_block`` times in a
row (word-granularity spatial locality), which keeps thrashing loops
from looking artificially hostile: even a thrashing loop hits in L1 for
the intra-block references, exactly as real strided code does.

Component address spaces are disjoint (distinct high bits) so
components never alias each other's blocks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.profiles import ComponentKind, MemoryProfile

#: Byte offset separating component address spaces.
_COMPONENT_STRIDE: int = 1 << 42
#: Block size assumed by the generators (matches the paper geometry).
_BLOCK_BYTES: int = 32


def generate_address_trace(
    profile: MemoryProfile, n_refs: int, seed: int
) -> np.ndarray:
    """Generate ``n_refs`` byte addresses for ``profile``.

    Deterministic in ``seed``.  Returns a ``uint64`` array.
    """
    if n_refs <= 0:
        raise WorkloadError(f"n_refs must be positive, got {n_refs}")
    rng = np.random.default_rng(seed)
    weights = np.array(profile.normalised_weights())
    n_sources = len(weights)  # components + streaming
    choices = rng.choice(n_sources, size=n_refs, p=weights)
    addresses = np.zeros(n_refs, dtype=np.uint64)

    for idx, component in enumerate(profile.components):
        mask = choices == idx
        count = int(mask.sum())
        if count == 0:
            continue
        n_blocks = max(1, int(np.ceil(component.size_kb * 1024 / _BLOCK_BYTES)))
        base = np.uint64((idx + 1) * _COMPONENT_STRIDE)
        if component.kind is ComponentKind.UNIFORM:
            blocks = rng.integers(0, n_blocks, size=count, dtype=np.uint64)
        else:  # LOOP: cyclic sequential walk with spatial locality
            positions = np.arange(count, dtype=np.uint64) // np.uint64(
                profile.refs_per_block
            )
            blocks = positions % np.uint64(n_blocks)
        addresses[mask] = base + blocks * np.uint64(_BLOCK_BYTES)

    stream_mask = choices == n_sources - 1
    count = int(stream_mask.sum())
    if count:
        base = np.uint64((n_sources + 1) * _COMPONENT_STRIDE)
        positions = np.arange(count, dtype=np.uint64) // np.uint64(
            profile.refs_per_block
        )
        addresses[stream_mask] = base + positions * np.uint64(_BLOCK_BYTES)
    return addresses
