"""Synthetic workloads standing in for the paper's trace suite.

The paper drives its cache study with Atom-collected address traces
(first 100 M D-cache references) and its instruction-queue study with
SimpleScalar runs (first 100 M instructions) of 21-22 applications:
SPEC95, the CMU task-parallel suite (airshed, stereo, radar) and the
NAS benchmark appcg.  Those traces are not redistributable, so this
package generates synthetic equivalents from per-application profiles:

* :mod:`repro.workloads.profiles` — one profile per application, with a
  memory profile (working-set components + load/store density) and an
  ILP profile (loop shape, dataflow depth, recurrences, latencies).
* :mod:`repro.workloads.address_trace` — LRU-stack-model D-cache
  reference streams.
* :mod:`repro.workloads.instruction_trace` — dependence-annotated
  instruction streams for the out-of-order simulator.
* :mod:`repro.workloads.phases` — phase-structured streams exhibiting
  the intra-application diversity of Section 6.
* :mod:`repro.workloads.suite` — suite assembly and lookup.

The substitution is sound for this paper because its conclusions depend
only on (a) the distribution of reuse distances of each address stream
and (b) the window-size dependence of each instruction stream's
extractable ILP; both are exactly what the profiles parameterise.
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    ComponentKind,
    IlpProfile,
    MemoryProfile,
    Suite,
    WorkingSetComponent,
)
from repro.workloads.address_trace import generate_address_trace
from repro.workloads.instruction_trace import InstructionTrace, generate_instruction_trace
from repro.workloads.phases import PhaseSegment, PhasedWorkload
from repro.workloads.suite import (
    all_profiles,
    cache_study_profiles,
    get_profile,
    queue_study_profiles,
)

__all__ = [
    "BenchmarkProfile",
    "MemoryProfile",
    "IlpProfile",
    "WorkingSetComponent",
    "ComponentKind",
    "Suite",
    "generate_address_trace",
    "InstructionTrace",
    "generate_instruction_trace",
    "PhaseSegment",
    "PhasedWorkload",
    "all_profiles",
    "get_profile",
    "cache_study_profiles",
    "queue_study_profiles",
]
