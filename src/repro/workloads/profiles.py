"""Per-application workload profiles.

Each of the paper's applications is characterised by:

* a :class:`MemoryProfile` — a mixture of working-set components
  (uniformly re-referenced regions and sequentially walked loops), a
  streaming (no-reuse) fraction, and the load/store density that
  converts reference counts into instruction counts; and
* an :class:`IlpProfile` — a loop-structured dataflow shape: iteration
  size, dataflow depth, loop-carried recurrence, and latency mix, which
  together determine how extractable ILP grows with issue-window size.

The parameter values are *calibrated to the paper's reported behaviour*,
not measured from the original binaries: e.g. stereo's TPI curve must
not flatten until a 48 KB L1 (Sec 5.2.2), appcg needs >48 KB for its
frequently-accessed structures to coexist, applu's working set exceeds
the whole 128 KB structure, compress is the only integer code to improve
beyond a 16 KB L1 and carries <10% loads/stores, most applications
favour a 64-entry issue queue while compress favours 128 and radar,
fpppp and appcg favour 16 (Secs 5.2-5.4).  EXPERIMENTS.md records how
well the calibrated suite reproduces each figure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Suite(enum.Enum):
    """Origin suite of a benchmark."""

    SPECINT95 = "SPECint95"
    SPECFP95 = "SPECfp95"
    CMU = "CMU task-parallel"
    NAS = "NAS"


class ComponentKind(enum.Enum):
    """Reference pattern of one working-set component."""

    #: Irregular reuse: blocks drawn uniformly from the region.  Produces
    #: a soft miss-ratio knee around the region size.
    UNIFORM = "uniform"
    #: Sequential cyclic walk over the region.  Produces a sharp
    #: all-or-nothing knee: an LRU cache smaller than the region thrashes.
    LOOP = "loop"


@dataclass(frozen=True)
class WorkingSetComponent:
    """One component of an application's data working set."""

    size_kb: float
    weight: float
    kind: ComponentKind = ComponentKind.UNIFORM

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError(f"component size must be positive, got {self.size_kb}")
        if self.weight <= 0:
            raise ValueError(f"component weight must be positive, got {self.weight}")


def uniform(size_kb: float, weight: float) -> WorkingSetComponent:
    """Shorthand for a uniformly re-referenced component."""
    return WorkingSetComponent(size_kb, weight, ComponentKind.UNIFORM)


def loop(size_kb: float, weight: float) -> WorkingSetComponent:
    """Shorthand for a sequentially walked (cyclic) component."""
    return WorkingSetComponent(size_kb, weight, ComponentKind.LOOP)


@dataclass(frozen=True)
class MemoryProfile:
    """Data-reference behaviour of one application.

    ``streaming_weight`` is the fraction of references that never reuse
    (cold, compulsory-miss traffic); component weights are normalised
    together with it.  ``load_store_fraction`` is the fraction of the
    dynamic instruction stream that references the D-cache.
    """

    components: tuple[WorkingSetComponent, ...]
    streaming_weight: float
    load_store_fraction: float
    #: Consecutive references that fall in the same 32 B block when a
    #: component is walked sequentially (spatial locality of loops and
    #: streams).
    refs_per_block: int = 4

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("memory profile needs at least one component")
        if self.streaming_weight < 0:
            raise ValueError("streaming weight must be >= 0")
        if not 0.0 < self.load_store_fraction <= 1.0:
            raise ValueError("load/store fraction must be in (0, 1]")
        if self.refs_per_block < 1:
            raise ValueError("refs_per_block must be >= 1")

    def normalised_weights(self) -> tuple[float, ...]:
        """Component weights plus streaming weight, normalised to sum 1."""
        raw = [c.weight for c in self.components] + [self.streaming_weight]
        total = sum(raw)
        return tuple(w / total for w in raw)


@dataclass(frozen=True)
class IlpProfile:
    """Loop-structured ILP shape of one application.

    The instruction stream is generated as iterations of ``block_size``
    instructions arranged in ``depth`` dataflow levels (each level
    depends on the one above).  ``recurrence_ops`` instructions per
    iteration form a serial loop-carried chain of per-op latency
    ``recurrence_latency``; the chain bounds steady-state ILP at
    ``block_size / (recurrence_ops * recurrence_latency)`` regardless of
    window size.  The window size needed to *reach* that bound grows
    with the iteration critical path (depth x latency), which is how an
    application "favours" a particular queue size.
    """

    block_size: int
    depth: int
    recurrence_ops: int = 0
    recurrence_latency: int = 1
    long_latency_fraction: float = 0.15
    long_latency_cycles: int = 4
    second_dep_probability: float = 0.4
    #: Optional second iteration shape, mixed in with probability
    #: ``deep_fraction`` per iteration.  Real codes are mixtures of loop
    #: nests; a deep, recurrence-free variant is what keeps IPC growing
    #: (concavely) as the window widens beyond the base shape's needs.
    deep_variant: "IlpProfile | None" = None
    deep_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.deep_variant is not None:
            if self.deep_variant.deep_variant is not None:
                raise ValueError("deep variants cannot nest")
            if not 0.0 < self.deep_fraction <= 1.0:
                raise ValueError("deep_fraction must be in (0, 1] with a variant")
        elif self.deep_fraction:
            raise ValueError("deep_fraction set without a deep_variant")
        if self.block_size < 1 or self.depth < 1:
            raise ValueError("block size and depth must be positive")
        if self.depth > self.block_size:
            raise ValueError("depth cannot exceed block size")
        if self.recurrence_ops < 0 or self.recurrence_ops > self.block_size:
            raise ValueError("recurrence ops must be in [0, block_size]")
        if self.recurrence_latency < 1:
            raise ValueError("recurrence latency must be >= 1")
        if not 0.0 <= self.long_latency_fraction <= 1.0:
            raise ValueError("long-latency fraction must be in [0, 1]")
        if self.long_latency_cycles < 1:
            raise ValueError("long-latency cycles must be >= 1")
        if not 0.0 <= self.second_dep_probability <= 1.0:
            raise ValueError("second-dep probability must be in [0, 1]")

    @property
    def recurrence_ipc_bound(self) -> float:
        """Steady-state IPC bound imposed by the loop-carried chain."""
        if self.recurrence_ops == 0:
            return float("inf")
        return self.block_size / (self.recurrence_ops * self.recurrence_latency)


@dataclass(frozen=True)
class BenchmarkProfile:
    """Everything the generators need to stand in for one application."""

    name: str
    suite: Suite
    domain: str  # "integer" or "floating"
    memory: MemoryProfile | None
    ilp: IlpProfile
    seed: int

    def __post_init__(self) -> None:
        if self.domain not in ("integer", "floating"):
            raise ValueError(f"domain must be integer|floating, got {self.domain}")

    @property
    def in_cache_study(self) -> bool:
        """Whether the app appears in the cache study (go does not; the
        paper could not instrument it with Atom)."""
        return self.memory is not None
