"""The paper's application suite, as calibrated synthetic profiles.

21 applications drive the cache study (SPEC95 minus go, plus the CMU
codes airshed/stereo/radar and the NAS benchmark appcg); the queue
study adds go back (22 total).  Each profile is calibrated so the
figures' qualitative structure reproduces — see the module docstring of
:mod:`repro.workloads.profiles` for the specific behaviours anchored to
the paper's text, and EXPERIMENTS.md for the measured outcome.

ILP profile vocabulary (what makes an app "favour" a queue size):

* ``CHAIN_BOUND`` apps saturate tiny windows — their loop-carried
  recurrence already limits IPC at 16 entries, so the fastest clock
  wins (radar, fpppp, appcg).
* ``MODERATE`` apps keep gaining ILP up to roughly a 64-entry window.
* ``DEEP`` apps (compress) have long per-iteration critical paths and
  no recurrence bound, so IPC keeps growing through 128 entries.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    BenchmarkProfile,
    IlpProfile,
    MemoryProfile,
    Suite,
    loop,
    uniform,
)

# --------------------------------------------------------------------------
# ILP profile presets (tuned against the simulator; see tests/test_suite.py)
# --------------------------------------------------------------------------

def _deep_iterations(
    long_latency_fraction: float = 0.35, long_latency_cycles: int = 5
) -> IlpProfile:
    """Deep, recurrence-free iteration shape: IPC grows with window.

    Mixed into every application's base shape; the mix fraction and the
    deep iterations' latency mix set how much ILP a wider window keeps
    unlocking.
    """
    return IlpProfile(
        block_size=32,
        depth=16,
        recurrence_ops=0,
        long_latency_fraction=long_latency_fraction,
        long_latency_cycles=long_latency_cycles,
    )


def _chain_bound(deep_fraction: float, rec_latency_cycles: int = 3) -> IlpProfile:
    """Recurrence-limited: best TPI at the 16-entry queue.

    ``deep_fraction`` sets how much the app loses by staying at 16 —
    appcg (0.05) loses the most by running wide, radar (0.12) the least.
    """
    return IlpProfile(
        block_size=12,
        depth=3,
        recurrence_ops=2,
        recurrence_latency=rec_latency_cycles,
        long_latency_fraction=0.10,
        long_latency_cycles=4,
        deep_variant=_deep_iterations(0.50, 6),
        deep_fraction=deep_fraction,
    )


def _moderate(
    block: int = 24, rec_latency_cycles: int = 5, deep_fraction: float = 0.50
) -> IlpProfile:
    """ILP saturates around a 64-entry window.

    A shallow recurrence-bounded base (most ILP available at small
    windows) mixed with deep iterations whose extra ILP a wider window
    unlocks — and whose marginal gain past 64 entries no longer pays
    for the slower clock.
    """
    return IlpProfile(
        block_size=block,
        depth=3,
        recurrence_ops=2,
        recurrence_latency=rec_latency_cycles,
        long_latency_fraction=0.20,
        long_latency_cycles=4,
        deep_variant=_deep_iterations(),
        deep_fraction=deep_fraction,
    )


def _near(block: int = 16) -> IlpProfile:
    """ILP saturates around a 32-entry window (ijpeg)."""
    return IlpProfile(
        block_size=block,
        depth=3,
        recurrence_ops=2,
        recurrence_latency=4,
        long_latency_fraction=0.12,
        long_latency_cycles=4,
        deep_variant=_deep_iterations(),
        deep_fraction=0.25,
    )


def _deep() -> IlpProfile:
    """compress: keeps gaining ILP through the 128-entry window."""
    return IlpProfile(
        block_size=24,
        depth=3,
        recurrence_ops=2,
        recurrence_latency=3,
        long_latency_fraction=0.10,
        long_latency_cycles=4,
        deep_variant=_deep_iterations(0.45, 5),
        deep_fraction=0.65,
    )


# --------------------------------------------------------------------------
# The suite
# --------------------------------------------------------------------------

_PROFILES: tuple[BenchmarkProfile, ...] = (
    # ---------------- SPECint95 ----------------
    BenchmarkProfile(
        name="go",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=None,  # the paper could not instrument go with Atom
        ilp=_moderate(block=24, rec_latency_cycles=5, deep_fraction=0.50),
        seed=101,
    ),
    BenchmarkProfile(
        name="m88ksim",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            components=(uniform(3, 0.95), uniform(10, 0.04)),
            streaming_weight=0.01,
            load_store_fraction=0.35,
        ),
        ilp=_moderate(block=24, rec_latency_cycles=4, deep_fraction=0.48),
        seed=102,
    ),
    BenchmarkProfile(
        name="gcc",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            components=(uniform(3, 0.82), uniform(9, 0.15), uniform(100, 0.015)),
            streaming_weight=0.015,
            load_store_fraction=0.3,
        ),
        ilp=_moderate(block=20, rec_latency_cycles=5, deep_fraction=0.50),
        seed=103,
    ),
    BenchmarkProfile(
        name="compress",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            # the only integer code that improves beyond a 16 KB L1; a
            # large dictionary walked cyclically, few loads/stores
            components=(uniform(3, 0.50), loop(16, 0.45), uniform(200, 0.03)),
            streaming_weight=0.01,
            load_store_fraction=0.09,
        ),
        ilp=_deep(),
        seed=104,
    ),
    BenchmarkProfile(
        name="li",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            components=(uniform(3, 0.93), uniform(9, 0.05)),
            streaming_weight=0.02,
            load_store_fraction=0.3,
        ),
        ilp=_moderate(block=24, rec_latency_cycles=5, deep_fraction=0.50),
        seed=105,
    ),
    BenchmarkProfile(
        name="ijpeg",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            components=(uniform(4, 0.90), uniform(12, 0.07)),
            streaming_weight=0.03,
            load_store_fraction=0.25,
        ),
        ilp=_near(),
        seed=106,
    ),
    BenchmarkProfile(
        name="perl",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            components=(uniform(3, 0.94), uniform(8, 0.05)),
            streaming_weight=0.01,
            load_store_fraction=0.35,
        ),
        ilp=_moderate(block=20, rec_latency_cycles=4, deep_fraction=0.50),
        seed=107,
    ),
    BenchmarkProfile(
        name="vortex",
        suite=Suite.SPECINT95,
        domain="integer",
        memory=MemoryProfile(
            components=(uniform(4, 0.84), uniform(8, 0.08), uniform(60, 0.02)),
            streaming_weight=0.02,
            load_store_fraction=0.3,
        ),
        ilp=_moderate(block=24, rec_latency_cycles=5, deep_fraction=0.50),
        seed=108,
    ),
    # ---------------- CMU task-parallel ----------------
    BenchmarkProfile(
        name="airshed",
        suite=Suite.CMU,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(5, 0.62), uniform(24, 0.13), loop(150, 0.025)),
            streaming_weight=0.02,
            load_store_fraction=0.35,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=5, deep_fraction=0.52),
        seed=109,
    ),
    BenchmarkProfile(
        name="stereo",
        suite=Suite.CMU,
        domain="floating",
        memory=MemoryProfile(
            # image tiles walked repeatedly: the TPI curve must not
            # flatten until a 48 KB L1 (paper Sec 5.2.2)
            components=(uniform(4, 0.39), loop(32, 0.55), uniform(300, 0.025)),
            streaming_weight=0.015,
            load_store_fraction=0.4,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=5, deep_fraction=0.52),
        seed=110,
    ),
    BenchmarkProfile(
        name="radar",
        suite=Suite.CMU,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(5, 0.78), uniform(12, 0.06), loop(100, 0.02)),
            streaming_weight=0.02,
            load_store_fraction=0.35,
        ),
        ilp=_chain_bound(deep_fraction=0.09),
        seed=111,
    ),
    # ---------------- NAS ----------------
    BenchmarkProfile(
        name="appcg",
        suite=Suite.NAS,
        domain="floating",
        memory=MemoryProfile(
            # frequently-accessed structures that only coexist in a
            # >48 KB L1: sharp drop past 48 KB (paper Sec 5.2.2)
            components=(uniform(4, 0.50), loop(40, 0.45), uniform(400, 0.012)),
            streaming_weight=0.01,
            load_store_fraction=0.4,
        ),
        ilp=_chain_bound(deep_fraction=0.05, rec_latency_cycles=4),
        seed=112,
    ),
    # ---------------- SPECfp95 ----------------
    BenchmarkProfile(
        name="tomcatv",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(5, 0.84), uniform(7, 0.05), loop(500, 0.05)),
            streaming_weight=0.02,
            load_store_fraction=0.4,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=6, deep_fraction=0.55),
        seed=113,
    ),
    BenchmarkProfile(
        name="swim",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            # stencil grids: large TPI reduction as L1 grows
            components=(uniform(5, 0.37), loop(16, 0.23), loop(40, 0.30), loop(400, 0.02)),
            streaming_weight=0.02,
            load_store_fraction=0.38,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=5, deep_fraction=0.52),
        seed=114,
    ),
    BenchmarkProfile(
        name="su2cor",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(5, 0.82), uniform(8, 0.04), uniform(150, 0.025)),
            streaming_weight=0.02,
            load_store_fraction=0.38,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=6, deep_fraction=0.55),
        seed=115,
    ),
    BenchmarkProfile(
        name="hydro2d",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(4, 0.80), uniform(9, 0.08), loop(300, 0.04)),
            streaming_weight=0.02,
            load_store_fraction=0.4,
        ),
        ilp=_moderate(block=24, rec_latency_cycles=5, deep_fraction=0.50),
        seed=116,
    ),
    BenchmarkProfile(
        name="mgrid",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(5, 0.77), uniform(7, 0.04), loop(1000, 0.05)),
            streaming_weight=0.02,
            load_store_fraction=0.42,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=5, deep_fraction=0.52),
        seed=117,
    ),
    BenchmarkProfile(
        name="applu",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            # 9% L1 miss ratio at 8 KB dropping only to 8% at 64 KB,
            # with most misses missing L2 too: the 128 KB structure is
            # simply too small (paper Sec 5.2.2)
            components=(uniform(3, 0.79), loop(250, 0.12)),
            streaming_weight=0.01,
            load_store_fraction=0.4,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=6, deep_fraction=0.55),
        seed=118,
    ),
    BenchmarkProfile(
        name="turb3d",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(4, 0.82), uniform(9, 0.08), loop(200, 0.02)),
            streaming_weight=0.02,
            load_store_fraction=0.35,
        ),
        ilp=_moderate(block=24, rec_latency_cycles=5, deep_fraction=0.50),
        seed=119,
    ),
    BenchmarkProfile(
        name="apsi",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(4, 0.80), uniform(8, 0.07), uniform(90, 0.02)),
            streaming_weight=0.02,
            load_store_fraction=0.38,
        ),
        ilp=_moderate(block=28, rec_latency_cycles=6, deep_fraction=0.55),
        seed=120,
    ),
    BenchmarkProfile(
        name="fpppp",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(4, 0.85), uniform(10, 0.08)),
            streaming_weight=0.01,
            load_store_fraction=0.3,
        ),
        ilp=_chain_bound(deep_fraction=0.08, rec_latency_cycles=4),
        seed=121,
    ),
    BenchmarkProfile(
        name="wave5",
        suite=Suite.SPECFP95,
        domain="floating",
        memory=MemoryProfile(
            components=(uniform(5, 0.63), uniform(34, 0.09), loop(250, 0.02)),
            streaming_weight=0.02,
            load_store_fraction=0.38,
        ),
        ilp=_moderate(block=24, rec_latency_cycles=5, deep_fraction=0.50),
        seed=122,
    ),
)

_BY_NAME = {p.name: p for p in _PROFILES}


def all_profiles() -> tuple[BenchmarkProfile, ...]:
    """Every application, in the paper's figure order."""
    return _PROFILES


def get_profile(name: str) -> BenchmarkProfile:
    """Look one application up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def cache_study_profiles() -> tuple[BenchmarkProfile, ...]:
    """The 21 applications of the cache study (go excluded)."""
    return tuple(p for p in _PROFILES if p.in_cache_study)


def queue_study_profiles() -> tuple[BenchmarkProfile, ...]:
    """The 22 applications of the queue study (go included)."""
    return _PROFILES


def integer_profiles() -> tuple[BenchmarkProfile, ...]:
    """Integer applications (figure panel (a))."""
    return tuple(p for p in _PROFILES if p.domain == "integer")


def floating_profiles() -> tuple[BenchmarkProfile, ...]:
    """Floating-point / scientific applications (figure panel (b))."""
    return tuple(p for p in _PROFILES if p.domain == "floating")
