"""Dependence-annotated instruction streams (the SimpleScalar substitute).

The queue study models an 8-way out-of-order machine with perfect
branch prediction, perfect caches and plentiful functional units, so
the *only* performance-relevant property of an instruction stream is
its dataflow structure: who depends on whom, and operation latencies.

Streams are generated as loop iterations of ``block_size`` instructions
arranged in ``depth`` dataflow levels (a layered DAG — each level feeds
the one below), optionally threaded by a serial loop-carried recurrence
chain.  Three knobs emerge:

* the recurrence bounds steady-state IPC at
  ``block_size / (recurrence_ops * recurrence_latency)``;
* the iteration critical path (``depth`` x mean latency) sets how much
  issue window an iteration's body occupies before it drains;
* ``deep_fraction`` mixes in iterations of an alternative
  ``deep_variant`` profile — typically one with a long critical path
  and no recurrence bound.  Real applications are mixtures of loop
  nests with different ILP shapes, and it is exactly this heterogeneity
  that produces the *concave* IPC-versus-window curves of the paper's
  Figure 10: the shallow iterations deliver most of the ILP at small
  windows, while the deep ones keep adding ILP as the window grows.

Together the knobs place an application's best TPI point at any queue
size, which is the behaviour Figures 10-13 depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.profiles import IlpProfile

#: Marker for "no dependence".
NO_DEP: int = -1


@dataclass(frozen=True)
class InstructionTrace:
    """A dynamic instruction stream with dataflow annotations.

    ``dep1``/``dep2`` hold absolute producer indices (or :data:`NO_DEP`);
    ``latency`` holds per-instruction execution latencies in cycles.
    ``load_address`` is optional: when present, entries >= 0 mark loads
    and carry the byte address they reference (:data:`NO_DEP` marks
    non-loads), enabling the integrated machine+cache simulation.
    """

    dep1: np.ndarray
    dep2: np.ndarray
    latency: np.ndarray
    load_address: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.latency)
        if len(self.dep1) != n or len(self.dep2) != n:
            raise WorkloadError("trace arrays must have equal length")
        if self.load_address is not None and len(self.load_address) != n:
            raise WorkloadError("load_address must match trace length")
        if n == 0:
            raise WorkloadError("instruction trace is empty")

    def __len__(self) -> int:
        return len(self.latency)

    def validate(self) -> None:
        """Check the dataflow invariants (producers strictly precede uses)."""
        idx = np.arange(len(self))
        for dep in (self.dep1, self.dep2):
            used = dep != NO_DEP
            if np.any(dep[used] >= idx[used]) or np.any(dep[used] < 0):
                raise WorkloadError("dependence does not point strictly backward")
        if np.any(self.latency < 1):
            raise WorkloadError("latencies must be >= 1 cycle")

    def slice(self, start: int, stop: int) -> "InstructionTrace":
        """Extract ``[start, stop)``, clipping dangling deps to NO_DEP."""
        dep1 = self.dep1[start:stop] - start
        dep2 = self.dep2[start:stop] - start
        dep1 = np.where((self.dep1[start:stop] == NO_DEP) | (dep1 < 0), NO_DEP, dep1)
        dep2 = np.where((self.dep2[start:stop] == NO_DEP) | (dep2 < 0), NO_DEP, dep2)
        loads = None if self.load_address is None else self.load_address[start:stop]
        return InstructionTrace(
            dep1=dep1, dep2=dep2, latency=self.latency[start:stop],
            load_address=loads,
        )


def concatenate(traces: Sequence[InstructionTrace]) -> InstructionTrace:
    """Concatenate traces, offsetting producer indices appropriately."""
    if not traces:
        raise WorkloadError("nothing to concatenate")
    dep1_parts, dep2_parts, lat_parts, load_parts = [], [], [], []
    base = 0
    with_loads = all(t.load_address is not None for t in traces)
    for t in traces:
        dep1_parts.append(np.where(t.dep1 == NO_DEP, NO_DEP, t.dep1 + base))
        dep2_parts.append(np.where(t.dep2 == NO_DEP, NO_DEP, t.dep2 + base))
        lat_parts.append(t.latency)
        if with_loads:
            load_parts.append(t.load_address)
        base += len(t)
    return InstructionTrace(
        dep1=np.concatenate(dep1_parts),
        dep2=np.concatenate(dep2_parts),
        latency=np.concatenate(lat_parts),
        load_address=np.concatenate(load_parts) if with_loads else None,
    )


def _append_iteration(
    profile: IlpProfile,
    rng: np.random.Generator,
    start: int,
    prev_chain_tail: int,
    dep1: list[int],
    dep2: list[int],
    latency_cycles: list[int],
) -> int:
    """Emit one iteration of ``profile`` starting at index ``start``.

    ``prev_chain_tail`` is the absolute index of the previous
    iteration's recurrence-chain tail (or :data:`NO_DEP`).  Returns this
    iteration's chain tail for the next call.
    """
    block = profile.block_size
    rec = profile.recurrence_ops
    layered = block - rec
    depth = min(profile.depth, max(layered, 1))

    # --- loop-carried recurrence chain ---
    for j in range(rec):
        dep1.append(start + j - 1 if j else prev_chain_tail)
        dep2.append(NO_DEP)
        latency_cycles.append(profile.recurrence_latency)
    chain_tail = start + rec - 1 if rec else prev_chain_tail

    if layered == 0:
        return chain_tail

    # --- layered dataflow body ---
    # level l occupies body positions [lo[l], hi[l])
    lo = [l * layered // depth for l in range(depth)]
    hi = lo[1:] + [layered]
    level_of = [min(jj * depth // layered, depth - 1) for jj in range(layered)]
    base = start + rec
    long_draws = rng.random(layered)
    pick_draws = rng.random(layered)
    second_draws = rng.random(layered)
    for jj in range(layered):
        level = level_of[jj]
        if level == 0:
            dep1.append(NO_DEP)
            dep2.append(NO_DEP)
        else:
            span_lo, span_hi = lo[level - 1], hi[level - 1]
            dep1.append(base + span_lo + int(pick_draws[jj] * (span_hi - span_lo)))
            if second_draws[jj] < profile.second_dep_probability:
                lvl2 = int(second_draws[jj] / profile.second_dep_probability * level)
                s_lo, s_hi = lo[lvl2], hi[lvl2]
                dep2.append(base + s_lo + int(pick_draws[jj] * (s_hi - s_lo)))
            else:
                dep2.append(NO_DEP)
        latency_cycles.append(
            profile.long_latency_cycles
            if long_draws[jj] < profile.long_latency_fraction
            else 1
        )
    return chain_tail


def generate_instruction_trace(
    profile: IlpProfile, n_instructions: int, seed: int
) -> InstructionTrace:
    """Generate ``n_instructions`` instructions for ``profile``.

    Deterministic in ``seed``.  Iterations alternate randomly between
    the base profile and its ``deep_variant`` (when configured), with
    each recurrence chain threading through the most recent chain tail.
    """
    if n_instructions <= 0:
        raise WorkloadError(f"n_instructions must be positive, got {n_instructions}")
    rng = np.random.default_rng(seed)
    dep1: list[int] = []
    dep2: list[int] = []
    latency: list[int] = []
    chain_tail = NO_DEP
    while len(latency) < n_instructions:
        use_deep = (
            profile.deep_variant is not None
            and rng.random() < profile.deep_fraction
        )
        iteration = profile.deep_variant if use_deep else profile
        chain_tail = _append_iteration(
            iteration, rng, len(latency), chain_tail, dep1, dep2, latency
        )
    n = n_instructions
    return InstructionTrace(
        dep1=np.array(dep1[:n], dtype=np.int64),
        dep2=np.array(dep2[:n], dtype=np.int64),
        latency=np.array(latency[:n], dtype=np.int16),
    )


def attach_memory_trace(
    trace: InstructionTrace,
    memory,  # MemoryProfile; untyped import to keep module deps one-way
    seed: int,
) -> InstructionTrace:
    """Mark a load/store subset of ``trace`` and give it addresses.

    Instructions become loads independently with the profile's
    load/store density; their addresses follow the profile's reference
    stream in program order, so the integrated simulation sees exactly
    the address sequence the stack-distance studies measure.
    """
    from repro.workloads.address_trace import generate_address_trace

    rng = np.random.default_rng(seed)
    n = len(trace)
    is_load = rng.random(n) < memory.load_store_fraction
    n_loads = int(is_load.sum())
    addresses = np.full(n, NO_DEP, dtype=np.int64)
    if n_loads:
        stream = generate_address_trace(memory, n_loads, seed)
        addresses[is_load] = stream.astype(np.int64)
    return InstructionTrace(
        dep1=trace.dep1,
        dep2=trace.dep2,
        latency=trace.latency,
        load_address=addresses,
    )
