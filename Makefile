# Convenience targets for the CAP reproduction.

PYTHON ?= python3

.PHONY: install test bench bench-engine bench-lint obs-check resilience-check robust-check service-smoke loadtest-smoke chaos-smoke distributed-smoke lint lint-graph typecheck ruff check figures examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-engine:
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py --benchmark-only -s

# Tiny traced sweep, every record validated against the trace schema
# (PYTHONPATH=src so it works from a bare checkout too).
obs-check:
	PYTHONPATH=src $(PYTHON) -m repro obs check
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_obs_schema.py

# Drill every recovery path: injected crash/hang/transient/corruption
# faults recovered byte-identically, plus an interrupted-then-resumed
# journaled sweep (includes a real SIGKILL test).
resilience-check:
	PYTHONPATH=src $(PYTHON) -m repro resilience check
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_resilience.py

# Degraded-hardware drill: seeded increment faults + sensor noise over
# all four adaptive structures, watchdog recovery verified, plus the
# robustness unit/property tests.
robust-check:
	PYTHONPATH=src $(PYTHON) -m repro robust check
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_robust.py tests/test_robust_invariants.py

# Boot `repro serve` on an ephemeral port, run one end-to-end query and
# a /metrics scrape through the typed client, tear down within a
# deadline.  Mirrors the CI service job.
service-smoke:
	PYTHONPATH=src $(PYTHON) scripts/service_smoke.py

# Boot a traced `repro serve`, run a small fixed-seed `repro loadtest`
# against it, assert the SLOs pass and a run record lands in the
# benchmark trajectory file, then validate the stitched distributed
# trace end to end.  Mirrors the CI loadtest job.
loadtest-smoke:
	PYTHONPATH=src $(PYTHON) scripts/loadtest_smoke.py

# Run the deterministic chaos drill (`repro chaos`): SIGKILL a
# journaled server mid-batch and assert every acked job recovers,
# trip/shed/recover the circuit breaker, replay a corrupted journal.
# Mirrors the CI chaos job.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) scripts/chaos_smoke.py

# Boot `repro serve --workers` plus two real `repro worker` processes,
# drive a fixed-seed loadtest at the service, SIGKILL one worker while
# the load is in flight, and assert the SLOs still hold, chunks were
# dispatched remotely, and SIGTERM drains cleanly.  Mirrors the CI
# distributed job.
distributed-smoke:
	PYTHONPATH=src $(PYTHON) scripts/distributed_smoke.py

# Domain-aware static analysis (src/repro/analysis): determinism,
# unit-suffix discipline, typed errors, observability naming.  Always
# available — it only needs the stdlib.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src

# Dump the analyzer's resolved cross-module call graph as JSON (the
# input RPR009-RPR012 reason over) — pipe through jq to explore.
lint-graph:
	PYTHONPATH=src $(PYTHON) -m repro lint src --graph

# Warm-cache analyzer budget: a cache-hit whole-tree lint must beat the
# cold run >= 3x and stay under its wall budget; appends analyzer
# wall-times to BENCH_lint.json.
bench-lint:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_lint.py --benchmark-only -s

# mypy/ruff are optional dev tools (pip install -e '.[dev]'); skip
# gracefully when they are not on PATH so `make check` works in a
# minimal container.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "typecheck: mypy not installed, skipping (pip install -e '.[dev]')"; \
	fi

ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff: not installed, skipping (pip install -e '.[dev]')"; \
	fi

# Everything static: domain lint (hard gate) + typecheck/ruff when present.
check: lint typecheck ruff

figures:
	$(PYTHON) -m repro export all --out figures

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .repro-lint-cache figures
