# Convenience targets for the CAP reproduction.

PYTHON ?= python3

.PHONY: install test bench bench-engine figures examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-engine:
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py --benchmark-only -s

figures:
	$(PYTHON) -m repro export all --out figures

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache figures
