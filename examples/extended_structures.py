"""Applying the CAP techniques in concert (paper Sections 4.2 and 5.4).

Beyond the cache and queue the paper evaluates, this example drives the
two structures it names as next candidates — a backup-organised TLB and
a resizable branch predictor table — and then configures all four
structures jointly per application, exposing the interaction the paper
warns about: a big setting of one structure floors the clock and makes
big settings of the others free.

Run:  python examples/extended_structures.py
"""

from repro.branch.predictors import PredictorKind
from repro.experiments.extended_structures import (
    branch_study,
    concert_study,
    tlb_study,
)


def main() -> None:
    print("=== Adaptive TLB (fast section + two-cycle backup) ===")
    tlb = tlb_study()
    print(f"conventional fast section: {tlb.conventional_config} entries")
    diverse = sorted(set(tlb.best_configs.values()))
    print(f"per-app best fast sections span {diverse}")
    for app in ("perl", "radar", "tomcatv", "applu"):
        print(f"  {app:8s} -> {tlb.best_configs[app]:3d} entries "
              f"(TPI {tlb.tpi.adaptive[app]:.3f} vs {tlb.tpi.conventional[app]:.3f} ns)")

    print("\n=== Adaptive branch predictor (gshare vs bimodal) ===")
    gshare = branch_study(PredictorKind.GSHARE)
    bimodal = branch_study(PredictorKind.BIMODAL)
    for app in ("li", "gcc", "swim"):
        g, b = gshare.tpi.adaptive[app], bimodal.tpi.adaptive[app]
        better = "gshare" if g < b else "bimodal"
        print(f"  {app:8s} gshare={g:.3f} bimodal={b:.3f} -> {better} wins")
    print("  (history pays where pattern contexts fit the table, hurts "
          "where they explode — organisation is a tradeoff too)")

    print("\n=== All four structures in concert ===")
    concert = concert_study()
    conv = concert.conventional
    print(f"joint conventional: L1 {8 * conv.cache_boundary}KB, "
          f"queue {conv.queue_entries}, TLB fast {conv.tlb_fast_entries}, "
          f"predictor {conv.predictor_entries}")
    print(f"average joint TPI reduction: "
          f"{concert.tpi.average_reduction_percent():.1f}%")
    print(f"Section 5.4 interaction: {concert.dominated_fraction:.0%} of cache "
          "boundaries cannot change the clock under the conventional queue")
    for app in ("compress", "fpppp", "stereo"):
        cfg = concert.best_configs[app]
        print(f"  {app:8s} -> L1 {8 * cfg.cache_boundary}KB, "
              f"queue {cfg.queue_entries}, TLB {cfg.tlb_fast_entries}, "
              f"bpred {cfg.predictor_entries}")


if __name__ == "__main__":
    main()
