"""Online configuration control without oracle monitoring.

The paper proposes adaptive control hardware that reads performance
counters every interval and reconfigures.  The policy studies feed that
hardware the finished interval's best-configuration label — information
real counters don't directly provide.  This example runs the honest
version: an explore/exploit controller that only observes the TPI of
the configuration it actually ran, probes neighbours periodically and
on detected phase changes, and pays every switch cost.

Run:  python examples/online_control.py
"""

from repro.core.controller import ControllerConfig, OnlineController, run_online
from repro.core.policies import StaticPolicy, evaluate_policy
from repro.experiments.interval_study import (
    cache_interval_study,
    figure12,
    figure13,
    predictor_study,
)


def main() -> None:
    studies = {
        "turb3d (stable phases)": figure12(intervals_per_phase=40),
        "vortex (regular alternation)": figure13(regular=True),
        "vortex (irregular)": figure13(regular=False),
        "cache boundary (alternating WS)": cache_interval_study(),
    }
    print(f"{'workload':32s} {'best static':>12s} {'oracle-fed':>11s} "
          f"{'online':>8s} {'switches':>9s} {'probes':>7s}")
    for name, study in studies.items():
        windows = study.windows
        static = min(
            evaluate_policy(study.series, StaticPolicy(w)).tpi_ns for w in windows
        )
        oracle_fed = predictor_study(study).adaptive.tpi_ns
        online = run_online(study.series, OnlineController(windows), windows[0])
        print(f"{name:32s} {static:>12.3f} {oracle_fed:>11.3f} "
              f"{online.tpi_ns:>8.3f} {online.n_switches:>9d} {online.n_probes:>7d}")

    print("\nKnob study on the irregular workload (probe aggressiveness):")
    study = studies["vortex (irregular)"]
    static = min(
        evaluate_policy(study.series, StaticPolicy(w)).tpi_ns for w in study.windows
    )
    for period, change in ((6, 0.15), (12, 0.15), (24, 0.5), (48, 2.0)):
        ctrl = OnlineController(
            study.windows,
            ControllerConfig(probe_period=period, staleness_limit=4 * period,
                             change_threshold=change),
        )
        out = run_online(study.series, ctrl, study.windows[0])
        print(f"  probe every {period:2d} (change thr {change:3.2f}): "
              f"TPI={out.tpi_ns:.3f} ns (static best {static:.3f}), "
              f"{out.n_switches} switches")
    print("\nAcross a 14x range of switching activity the controller stays")
    print("within a few percent of the best static choice — bounded regret on")
    print("the workload where adaptation cannot pay, gains where it can.")


if __name__ == "__main__":
    main()
