"""Finer-grained adaptivity: the Section 6 mechanism in action.

Process-level adaptivity leaves intra-application diversity on the
table.  This example reproduces the paper's observation on the
Figure 13 workloads and then runs the mechanism the paper proposes: a
pattern predictor over per-interval best-configuration labels, gated by
a confidence estimate so that irregular stretches (Figure 13b) don't
degenerate into reconfiguration thrash.

Run:  python examples/finer_grained_adaptivity.py
"""

from repro.experiments.interval_study import figure12, figure13, predictor_study


def report(name: str, study) -> None:
    print(f"\n--- {name} ---")
    for window, outcome in study.static.items():
        print(f"  static {window:>3d} entries: TPI={outcome.tpi_ns:.3f} ns")
    print(
        f"  predictor+confidence: TPI={study.adaptive.tpi_ns:.3f} ns "
        f"({study.adaptive.n_switches} switches, "
        f"{study.adaptive.switch_overhead_ns:.0f} ns switching overhead)"
    )
    print(
        f"  predictor ungated:    TPI={study.adaptive_ungated.tpi_ns:.3f} ns "
        f"({study.adaptive_ungated.n_switches} switches)"
    )
    print(f"  switching oracle:     TPI={study.oracle.tpi_ns:.3f} ns")
    print(f"  gain over best static: {study.adaptive_gain_percent:.1f}%")


def main() -> None:
    print("Interval-level best configuration, 2000-instruction intervals")

    turb3d = figure12(intervals_per_phase=50)
    runs = turb3d.stability_runs()
    print(f"\nturb3d best-config runs: {[(w, n) for w, n in runs]}")
    report("turb3d: two long stable phases (Figure 12)", predictor_study(turb3d))

    regular = figure13(regular=True)
    print(f"\nvortex(regular) best-config runs: {regular.stability_runs()}")
    report("vortex: regular ~15-interval alternation (Figure 13a)",
           predictor_study(regular))

    irregular = figure13(regular=False)
    seq = irregular.best_sequence()
    flips = int((seq[1:] != seq[:-1]).sum())
    print(f"\nvortex(irregular): best config flips {flips}x over {len(seq)} intervals")
    report("vortex: near-random variation (Figure 13b)", predictor_study(irregular))

    print(
        "\nTakeaway: the predictor wins where patterns exist and the "
        "confidence gate keeps it from losing where they don't — exactly "
        "the design point Section 6 argues for."
    )


if __name__ == "__main__":
    main()
