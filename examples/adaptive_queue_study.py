"""Process-level adaptive instruction-queue sizing.

The paper's second case study: an 8-way out-of-order machine whose
issue queue can take any size from 16 to 128 entries, with the clock
following the Palacharla wakeup+select critical path.  Applications
with recurrence-bound ILP (appcg, fpppp, radar) want the small, fast
queue; compress keeps finding ILP through 128 entries; most codes sit
at 64.

Run:  python examples/adaptive_queue_study.py
"""

from repro import AdaptiveInstructionQueue, ConfigurationManager, DynamicClock
from repro.ooo import QueueTimingModel
from repro.ooo.machine import run_window_sweep
from repro.workloads import generate_instruction_trace, get_profile

APPLICATIONS = ("m88ksim", "compress", "appcg", "fpppp", "radar", "swim")
N_INSTRUCTIONS = 12_000


def main() -> None:
    iqueue = AdaptiveInstructionQueue()
    clock = DynamicClock(adaptive_structures=(iqueue,))
    manager = ConfigurationManager(clock=clock, structures=(iqueue,))
    timing = QueueTimingModel()
    cycles = timing.cycle_table()

    print(f"{'app':10s} {'chosen':>7s} {'cycle':>7s} {'IPC':>6s} {'TPI':>7s}")
    for app in APPLICATIONS:
        profile = get_profile(app)
        trace = generate_instruction_trace(profile.ilp, N_INSTRUCTIONS, profile.seed)
        sweep = run_window_sweep(trace, timing.sizes)

        decision = manager.select_for_process(
            app, "iqueue", lambda w: sweep[w].tpi_ns(cycles[w])
        )
        chosen = decision.configuration
        print(
            f"{app:10s} {chosen:>7d} {cycles[chosen]:>7.3f} "
            f"{sweep[chosen].ipc:>6.2f} {decision.predicted_tpi_ns:>7.3f}"
        )

    print("\nRestoring configurations on context switches (queue drains + clock):")
    for app in APPLICATIONS:
        # model a half-full queue at switch time
        occupancy = [8] * iqueue.queue.enabled_increments() + [0] * (
            8 - iqueue.queue.enabled_increments()
        )
        iqueue.queue.fill(occupancy)
        overhead = manager.context_switch(app)
        print(
            f"  -> {app:10s} {iqueue.configuration:>4d} entries, "
            f"cycle={clock.cycle_time_ns():.3f} ns, overhead={overhead:.1f} ns"
        )


if __name__ == "__main__":
    main()
