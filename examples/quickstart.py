"""Quickstart: build a Complexity-Adaptive Processor and reconfigure it.

Demonstrates the core idea of the paper in a few lines: one chip, many
IPC/clock-rate tradeoff points.  The dynamic clock follows whatever the
slowest enabled structure permits, and reconfiguration is cheap — the
cache moves its L1/L2 boundary without losing a byte, and the queue
just drains the entries about to be disabled.

Run:  python examples/quickstart.py
"""

from repro import CapProcessor


def main() -> None:
    cpu = CapProcessor()
    print("=== A fresh CAP (everything at maximum size) ===")
    print(cpu.describe())

    print("\n=== All predetermined clock periods (worst-case analysis) ===")
    for period in cpu.clock.available_speeds_ns():
        print(f"  {period:.3f} ns  ({1.0 / period:.2f} GHz)")

    print("\n=== Shrink to the fastest configuration ===")
    cost_q = cpu.iqueue.reconfigure(16)
    cost_c = cpu.dcache.reconfigure(1)
    print(f"queue drain: {cost_q.cleanup_cycles} cycles, "
          f"clock switch needed: {cost_q.requires_clock_switch}")
    print(f"cache cleanup: {cost_c.cleanup_cycles} cycles "
          f"(exclusive caching: data stays put)")
    print(cpu.describe())

    print("\n=== A middle-of-the-road configuration ===")
    cpu.manager.apply("iqueue", 64)
    cpu.manager.apply("dcache", 2)
    print(cpu.describe())

    print("\n=== The Section 5.4 interaction ===")
    cpu.iqueue.reconfigure(128)
    effective = cpu.effective_configurations("dcache")
    print(f"with a 128-entry queue flooring the clock, only these cache")
    print(f"boundaries still change the cycle time: {effective}")


if __name__ == "__main__":
    main()
