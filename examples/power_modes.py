"""Power management with a CAP (paper Section 4.1).

The controllable clock and the hardware disables give one chip several
performance/power operating points: full-size structures at full speed
for a server, mid-size at a backed-off clock for a laptop, and minimum
structures at the slowest predetermined clock for running off a UPS
after a power failure.

Run:  python examples/power_modes.py
"""

from repro import AdaptiveCacheHierarchy, AdaptiveInstructionQueue
from repro.core.power import PowerModel, PowerMode


def main() -> None:
    dcache = AdaptiveCacheHierarchy()
    iqueue = AdaptiveInstructionQueue()
    model = PowerModel(structures=(dcache, iqueue), fixed_fraction=0.4)

    print(f"{'mode':>18s} {'configs':>24s} {'clock':>9s} {'rel. power':>11s}")
    baseline = None
    for mode in (PowerMode.HIGH_PERFORMANCE, PowerMode.BALANCED, PowerMode.LOW_POWER):
        est = model.mode_estimate(mode)
        if baseline is None:
            baseline = est.relative_power
        configs = ", ".join(f"{k}={v}" for k, v in sorted(est.configs.items()))
        print(
            f"{mode.value:>18s} {configs:>24s} {est.cycle_time_ns:>7.3f}ns "
            f"{est.relative_power / baseline:>10.2f}x"
        )

    print("\nCustom point: full cache, tiny queue, deliberately underclocked")
    est = model.estimate({"dcache": 8, "iqueue": 16}, cycle_time_ns=2.0)
    print(f"  clock={est.cycle_time_ns:.3f} ns, power={est.relative_power / baseline:.2f}x "
          f"of high-performance mode")


if __name__ == "__main__":
    main()
