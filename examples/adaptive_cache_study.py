"""Process-level adaptive cache sizing for a mixed workload.

The scenario from the paper's introduction: a machine that must run
both general-purpose codes (small working sets, clock-hungry) and
scientific codes with megabyte-scale structures (capacity-hungry).  A
fixed design compromises one or the other; the CAP picks a boundary per
application.

This example drives the *public API end to end*: synthesize each
application's D-cache reference trace, measure it once with the
stack-distance engine, let the Configuration Manager choose the
TPI-minimising boundary, and apply it to a live AdaptiveCacheHierarchy
complete with clock-switch costs.

Run:  python examples/adaptive_cache_study.py
"""

from repro import AdaptiveCacheHierarchy, ConfigurationManager, DynamicClock
from repro.cache import CacheTpiModel, DepthHistogram, PAPER_GEOMETRY, StackDistanceEngine
from repro.workloads import generate_address_trace, get_profile

#: A general-purpose code, a capacity-hungry vision code, and the NAS
#: solver whose structures only coexist in a large L1.
APPLICATIONS = ("perl", "stereo", "appcg", "compress")
N_REFS = 40_000
WARMUP = 15_000


def measure(app: str) -> DepthHistogram:
    """Collect the app's trace and its stack-depth histogram."""
    profile = get_profile(app)
    addresses = generate_address_trace(profile.memory, N_REFS + WARMUP, profile.seed)
    engine = StackDistanceEngine(PAPER_GEOMETRY)
    engine.process(addresses[:WARMUP])  # warm the structure
    return DepthHistogram.from_depths(PAPER_GEOMETRY, engine.process(addresses[WARMUP:]))


def main() -> None:
    dcache = AdaptiveCacheHierarchy()
    clock = DynamicClock(adaptive_structures=(dcache,))
    manager = ConfigurationManager(clock=clock, structures=(dcache,))
    tpi_model = CacheTpiModel()

    print(f"{'app':10s} {'chosen L1':>10s} {'cycle':>7s} {'TPI':>7s}   evaluated TPIs")
    for app in APPLICATIONS:
        profile = get_profile(app)
        histogram = measure(app)
        decision = manager.select_for_process(
            app,
            "dcache",
            lambda k: tpi_model.evaluate(
                histogram, profile.memory.load_store_fraction, k
            ).tpi_ns,
        )
        swept = ", ".join(
            f"{8 * k}K={tpi:.3f}" for k, tpi in sorted(decision.evaluated.items())
        )
        print(
            f"{app:10s} {8 * decision.configuration:>9d}K "
            f"{decision.cycle_time_ns:>6.3f} {decision.predicted_tpi_ns:>7.3f}   {swept}"
        )

    print("\nSimulating context switches between the configured processes:")
    for app in APPLICATIONS + APPLICATIONS[:1]:
        overhead = manager.context_switch(app)
        print(
            f"  -> {app:10s} boundary={dcache.configuration} increments, "
            f"cycle={clock.cycle_time_ns():.3f} ns, "
            f"reconfiguration overhead={overhead:.1f} ns"
        )
    print(f"\ntotal clock-switch overhead: {clock.total_switch_overhead_ns:.1f} ns "
          f"({len(clock.switch_history)} switches)")


if __name__ == "__main__":
    main()
