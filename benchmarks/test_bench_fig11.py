"""Figure 11: best conventional vs. process-level adaptive queue."""

import pytest

from repro.experiments.queue_study import figure11
from repro.experiments.reporting import format_table


@pytest.mark.figure("11")
def test_bench_figure11(benchmark):
    study = benchmark.pedantic(figure11, rounds=1, iterations=1)

    rows = []
    reductions = study.tpi.per_app_reduction_percent()
    for app in study.tpi.applications:
        rows.append(
            [
                app,
                study.best_sizes[app],
                study.tpi.conventional[app],
                study.tpi.adaptive[app],
                f"{reductions[app]:.1f}%",
            ]
        )
    rows.append(
        [
            "average",
            "-",
            study.tpi.average_conventional(),
            study.tpi.average_adaptive(),
            f"{study.tpi.average_reduction_percent():.1f}%",
        ]
    )
    print(
        f"\nFigure 11: conventional = {study.conventional_size}-entry queue "
        f"(suite-best fixed size)"
    )
    print(
        format_table(
            ["app", "adaptive entries", "TPI conv", "TPI adapt", "reduction"], rows
        )
    )
    print(
        f"average TPI reduction: {study.tpi.average_reduction_percent():.1f}% (paper: 7%)"
    )

    assert study.conventional_size == 64
    assert 4.0 < study.tpi.average_reduction_percent() < 12.0
    assert study.tpi.never_worse()
