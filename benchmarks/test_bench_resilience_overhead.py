"""Guard: the resilience machinery must be ~free when nothing fails.

Every parallel batch now runs through
:class:`~repro.resilience.ResilientExecutor`, and the serial (``jobs=1``)
path runs through its inline retry loop.  On a healthy run all of that
is pure bookkeeping — attempt counters, a try/except per chunk, pending
-set upkeep — so its cost must vanish next to real cell evaluation.
This benchmark compares the resilient serial path against bare
:func:`~repro.engine.cells.evaluate_chunk` over the same cells and
bounds the fault-free overhead at 10% (the measured cost is ~3%, and
most of that is timer noise).
"""

import time

import pytest

from repro.engine.cells import cache_tpi_cell, evaluate_chunk, queue_tpi_cell
from repro.resilience import ResilientExecutor, RetryPolicy
from repro.workloads.suite import get_profile

N_REFS, WARMUP_REFS = 12_000, 3_000
N_INSTR = 4_000


def _chunks():
    compress = get_profile("compress")
    stereo = get_profile("stereo")
    return [
        [cache_tpi_cell(compress, N_REFS, WARMUP_REFS, (1, 2, 4))],
        [cache_tpi_cell(stereo, N_REFS, WARMUP_REFS, (1, 2, 4))],
        [queue_tpi_cell(compress, N_INSTR, (16, 32))],
        [queue_tpi_cell(stereo, N_INSTR, (16, 32))],
    ]


def test_bench_fault_free_resilience_overhead(benchmark):
    chunks = _chunks()
    for chunk in chunks:  # warm the per-process trace memos first
        evaluate_chunk(chunk)

    def resilient():
        return ResilientExecutor(jobs=1, policy=RetryPolicy()).run(chunks)

    benchmark.pedantic(resilient, rounds=5, iterations=1)
    resilient_s = benchmark.stats.stats.min

    raw_s = min(
        _timed(lambda: [evaluate_chunk(c) for c in chunks]) for _ in range(5)
    )

    # The true bookkeeping cost is microseconds against ~30ms of cell
    # evaluation; the bound is loose only to absorb timer noise.
    overhead = resilient_s / raw_s - 1.0
    print(
        f"\nraw {raw_s * 1e3:.2f} ms, resilient {resilient_s * 1e3:.2f} ms "
        f"-> fault-free overhead {overhead:.3%} (limit 10%)"
    )
    assert overhead < 0.10


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.parametrize("attempt", [1, 2, 3])
def test_bench_backoff_computation_is_microseconds(benchmark, attempt):
    """The deterministic jitter hash must never be a scheduling cost."""
    policy = RetryPolicy()
    delay = benchmark(policy.delay_s, attempt, "17")
    assert delay >= 0.0
