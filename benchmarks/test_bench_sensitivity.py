"""Robustness bench: headline results vs trace length.

Backs the calibration claim that the shortened traces do not drive the
conclusions: the suite-best configuration and every per-application
winner must be identical at half and double the default lengths, and
the average reductions must move only slightly.
"""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import (
    cache_length_robustness,
    queue_length_robustness,
)


@pytest.mark.figure("robustness")
def test_bench_trace_length_robustness(benchmark):
    def both():
        return cache_length_robustness(), queue_length_robustness()

    cache, queue = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = []
    for result in (cache, queue):
        for p in result.points:
            rows.append(
                [result.study, p.length, p.conventional,
                 f"{p.average_reduction_percent:.1f}%"]
            )
    print("\nHeadline results vs trace length")
    print(format_table(["study", "events", "conventional", "avg reduction"], rows))
    print(
        f"cache: winners stable for {cache.winner_agreement():.0%} of apps, "
        f"reduction spread {cache.reduction_spread_percent:.1f} points\n"
        f"queue: winners stable for {queue.winner_agreement():.0%} of apps, "
        f"reduction spread {queue.reduction_spread_percent:.1f} points"
    )
    for result in (cache, queue):
        assert result.conventional_stable
        assert result.winner_agreement() >= 0.9
        assert result.reduction_spread_percent < 4.0
