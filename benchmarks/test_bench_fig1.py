"""Figure 1: cache wire delay vs. subarray count and feature size."""

import pytest

from repro.experiments.reporting import format_series
from repro.experiments.wire_delay import figure1


@pytest.mark.figure("1a")
def test_bench_figure1a(benchmark):
    series = benchmark(figure1, subarray_kb=2)
    print("\nFigure 1(a): cache wire delay, 2KB subarrays (ns)")
    print(format_series(series.x_label, series.x_values, series.as_series_dict()))
    assert series.crossover(0.18) is not None


@pytest.mark.figure("1b")
def test_bench_figure1b(benchmark):
    series = benchmark(figure1, subarray_kb=4)
    print("\nFigure 1(b): cache wire delay, 4KB subarrays (ns)")
    print(format_series(series.x_label, series.x_values, series.as_series_dict()))
    assert series.crossover(0.18) is not None
