"""Guard: disabled instrumentation must stay out of the sweep's way.

The decision tracer and profiler are permanently compiled into the hot
paths (structure ``run()``, engine cells, manager decisions) and rely
on cheap null objects when no tracer/profiler is active.  This
benchmark estimates the disabled-path cost on a Figure 9 sweep — the
number of instrumentation points the sweep actually hits, times the
measured cost of one disabled point — and asserts it stays under 5% of
the sweep's wall time.
"""

import time

import pytest

from repro.experiments.cache_study import figure8_9
from repro.obs import trace as obs
from repro.obs.trace import Tracer, span

N_REFS, WARMUP_REFS = 12_000, 3_000


def _sweep():
    return figure8_9(n_refs=N_REFS, warmup_refs=WARMUP_REFS)


@pytest.mark.figure("9")
def test_bench_disabled_instrumentation_overhead(benchmark):
    _sweep()  # warm the per-process histogram memo first

    # How many instrumentation points does one sweep actually hit?
    # A traced run writes one record per span/event, so its record
    # count bounds the disabled-path work of the untraced run.
    with Tracer() as tracer:
        with span("figure", level="run", figure="9"):
            _sweep()
    n_points = len(tracer.records)
    assert n_points > 0

    # Production path: the very same sweep with tracing disabled.
    benchmark.pedantic(_sweep, rounds=3, iterations=1)
    sweep_s = benchmark.stats.stats.min

    # Measured cost of one disabled instrumentation point: a span with
    # attributes, opened and closed against the null tracer.
    assert obs.current_tracer() is obs.NULL_TRACER
    reps = 100_000
    t0 = time.perf_counter()
    for i in range(reps):
        with obs.span("interval", level="interval", index=i, app="x") as sp:
            sp.set(tpi_ns=0.3)
    per_point_s = (time.perf_counter() - t0) / reps

    overhead_s = n_points * per_point_s
    print(
        f"\nsweep {sweep_s * 1e3:.2f} ms, {n_points} instrumentation "
        f"points, {per_point_s * 1e9:.0f} ns per disabled point "
        f"-> estimated overhead {overhead_s / sweep_s:.3%} (limit 5%)"
    )
    assert overhead_s < 0.05 * sweep_s
