"""Benchmark-harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the same rows/series the paper plots (run with ``-s`` to see them, or
read the captured output on failure).  pytest-benchmark times the
regeneration itself.
"""

from __future__ import annotations


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; make sure
    # pytest-benchmark is active even under `pytest benchmarks/`.
    config.addinivalue_line("markers", "figure(name): links a benchmark to a paper figure")
    config.addinivalue_line("markers", "service: benchmarks of the sweep service layer")
