"""Guardrail overhead bench: robustness must be ~free on healthy hardware.

The thrash detector and the sensor path sit on the controller's
per-interval hot path.  On fault-free hardware with clean sensors they
must cost essentially nothing — the budget is <5% added wall time on
the online-controller loop.
"""

import time

import numpy as np
import pytest

from repro.core.controller import GuardrailConfig, OnlineController, run_online
from repro.ooo.intervals import IntervalSeries
from repro.robust import NoisySensor, SensorNoiseConfig

_N_INTERVALS = 4_000
_REPEATS = 15


def _series():
    rng = np.random.default_rng(42)
    cycle = {16: 0.435, 64: 0.626}
    return {
        w: IntervalSeries(
            w, cycle[w], 1000,
            0.5 * (1 + 0.05 * rng.uniform(-1, 1, _N_INTERVALS)),
        )
        for w in (16, 64)
    }


def _interleaved_overhead(plain, guarded) -> tuple[float, float, float]:
    """Median per-round overhead of ``guarded`` over ``plain``.

    The runners are timed back-to-back within each round so both see
    the same machine state; the per-round time ratio therefore cancels
    clock-frequency and load drift, and the median across rounds
    discards the occasional round hit by a scheduler blip.  Returns
    ``(plain_best, guarded_best, median_overhead)``.
    """
    plain_best = guarded_best = float("inf")
    ratios = []
    for _ in range(_REPEATS):
        start = time.perf_counter()
        plain()
        plain_s = time.perf_counter() - start
        start = time.perf_counter()
        guarded()
        guarded_s = time.perf_counter() - start
        plain_best = min(plain_best, plain_s)
        guarded_best = min(guarded_best, guarded_s)
        ratios.append(guarded_s / plain_s)
    ratios.sort()
    return plain_best, guarded_best, ratios[len(ratios) // 2] - 1.0


@pytest.mark.figure("robust-overhead")
def test_bench_guardrail_overhead(benchmark):
    series = _series()

    def plain():
        return run_online(series, OnlineController((16, 64)), 16)

    def guarded():
        # full robustness stack, nothing degraded: guardrails armed,
        # a clean sensor in the observation path
        return run_online(
            series,
            OnlineController((16, 64), guardrails=GuardrailConfig()),
            16,
            sensor=NoisySensor(SensorNoiseConfig()),
        )

    assert plain().instructions == guarded().instructions  # also warms up
    plain_s, guarded_s, overhead = benchmark.pedantic(
        lambda: _interleaved_overhead(plain, guarded), rounds=1, iterations=1
    )
    print(
        f"\nonline controller, {_N_INTERVALS} intervals: "
        f"plain {plain_s * 1e3:.2f} ms, guarded {guarded_s * 1e3:.2f} ms "
        f"({overhead:+.1%} median overhead; budget +5%)"
    )
    assert overhead < 0.05
