"""Guards: tracing-off and journal-off overhead on the service hot
path each stay under 5%.

Request tracing is permanently compiled into the HTTP handler, the
broker and the engine (``record_span`` calls, ``TraceContext`` plumbing,
shard decisions), all dispatching to the shared null tracer when no
tracer is active.  This benchmark measures a warm-hit request storm —
the service's hottest path, where tracing cost is proportionally
largest because no engine work hides it — with tracing disabled, counts
the tracing touch points a traced run of the same storm records, and
asserts touch-points x per-point-cost stays under 5% of the storm's
wall time.
"""

import time

import pytest

from repro.api import OptimizationRequest
from repro.engine.engine import ExperimentEngine
from repro.obs import trace as obs
from repro.obs.trace import Tracer
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.loadtest import run_loadtest

N_REFS, WARMUP_REFS = 3_000, 500
STORM = dict(tenants=2, requests_per_tenant=4, seed=0, warm_fraction=1.0)


def _storm(url: str) -> None:
    report = run_loadtest(url, probe=False, **STORM)
    assert report.errors == 0


@pytest.mark.service
def test_bench_tracing_off_service_overhead(benchmark):
    engine = ExperimentEngine()
    with ServiceThread(engine, ServiceConfig(port=0)) as svc:
        # Prime the warm store so the storm below is pure hot path.
        ServiceClient(svc.url).optimize(
            OptimizationRequest(
                "dcache", "compress", n_refs=4096, warmup_refs=512
            )
        )

        # Count tracing touch points: records a traced identical storm
        # writes, an upper bound on null-tracer dispatches per storm.
        with Tracer() as tracer:
            _storm(svc.url)
        n_points = len(tracer.records)
        assert n_points > 0

        # Production path: same storm, tracing disabled.
        assert obs.current_tracer() is obs.NULL_TRACER
        benchmark.pedantic(lambda: _storm(svc.url), rounds=3, iterations=1)
        storm_s = benchmark.stats.stats.min

    # Measured cost of one disabled touch point (record_span + the id
    # reservation the handler makes per request).
    null = obs.NULL_TRACER
    reps = 100_000
    t0 = time.perf_counter()
    for _ in range(reps):
        null.new_span_id()
        null.record_span(
            "service.request", ts=0.0, dur_s=0.0,
            method="POST", path="/v1/optimize", status=200,
        )
    per_point_s = (time.perf_counter() - t0) / reps

    overhead_s = n_points * per_point_s
    print(
        f"\nwarm storm {storm_s * 1e3:.2f} ms, {n_points} tracing touch "
        f"points, {per_point_s * 1e9:.0f} ns per disabled point "
        f"-> estimated overhead {overhead_s / storm_s:.3%} (limit 5%)"
    )
    assert overhead_s < 0.05 * storm_s


@pytest.mark.service
def test_bench_dispatch_off_service_overhead(benchmark):
    """Without ``--workers``, the dispatch plane is a pair of ``None``
    guards on the engine's batch path.

    Every engine batch now asks "is a dispatch plane attached, and is
    it ready?" before falling through to the local resilient pool.
    Measure a warm-hit storm against a workers-off service, price one
    pass through those disabled guards, and assert guards x batches
    stays under 5% of the storm's wall time.
    """
    engine = ExperimentEngine()
    config = ServiceConfig(port=0)
    assert config.workers is False  # the fast path under test
    with ServiceThread(engine, config) as svc:
        assert svc.service.plane is None  # workers-off: nothing attached
        assert engine.dispatcher is None
        ServiceClient(svc.url).optimize(
            OptimizationRequest(
                "dcache", "compress", n_refs=4096, warmup_refs=512
            )
        )
        benchmark.pedantic(lambda: _storm(svc.url), rounds=3, iterations=1)
        storm_s = benchmark.stats.stats.min

        # Price one disabled-state pass: the exact guard sequence
        # ExperimentEngine._compute walks per batch with no plane.
        dispatcher = engine.dispatcher
        reps = 100_000
        t0 = time.perf_counter()
        for _ in range(reps):
            dispatching = dispatcher is not None and dispatcher.ready()
            if dispatcher is not None:  # pragma: no cover - disabled
                pass
            if dispatching:  # pragma: no cover - disabled branch
                pass
        per_batch_s = (time.perf_counter() - t0) / reps

    # Worst case: every request becomes its own engine batch.
    n_batches = STORM["tenants"] * STORM["requests_per_tenant"]
    overhead_s = n_batches * per_batch_s
    print(
        f"\nwarm storm {storm_s * 1e3:.2f} ms, {n_batches} batches, "
        f"{per_batch_s * 1e9:.0f} ns of disabled guards per batch "
        f"-> estimated overhead {overhead_s / storm_s:.3%} (limit 5%)"
    )
    assert overhead_s < 0.05 * storm_s


@pytest.mark.service
def test_bench_journal_off_service_overhead(benchmark):
    """With no ``--job-journal``, the robustness plumbing is no-op guards.

    Every submit on the warm path now walks the crash-safety machinery
    in its disabled state: the idempotency-key probe, the job-table
    reservation, the deadline arithmetic, and the ``journal is None``
    gates around admit/finish.  Measure a warm-hit storm against a
    journal-less service, price one pass through those disabled guards,
    and assert guards x requests stays under 5% of the storm's wall
    time.
    """
    engine = ExperimentEngine()
    config = ServiceConfig(port=0)
    assert config.journal_path is None  # the fast path under test
    with ServiceThread(engine, config) as svc:
        ServiceClient(svc.url).optimize(
            OptimizationRequest(
                "dcache", "compress", n_refs=4096, warmup_refs=512
            )
        )
        benchmark.pedantic(lambda: _storm(svc.url), rounds=3, iterations=1)
        storm_s = benchmark.stats.stats.min
        broker = svc.service.broker
        store = broker.jobs

        # Price one disabled-state pass: the exact guard sequence
        # submit/_finish add per request when journaling is off.
        journal = broker.journal
        idempotency_key = None
        deadline_s = None
        reps = 100_000
        t0 = time.perf_counter()
        for _ in range(reps):
            if idempotency_key:  # pragma: no cover - disabled branch
                pass
            store.reserve()
            if deadline_s is not None:  # pragma: no cover
                pass
            if journal is not None:  # pragma: no cover
                pass
            if journal is not None:  # pragma: no cover
                pass
        per_request_s = (time.perf_counter() - t0) / reps

    n_requests = STORM["tenants"] * STORM["requests_per_tenant"]
    overhead_s = n_requests * per_request_s
    print(
        f"\nwarm storm {storm_s * 1e3:.2f} ms, {n_requests} requests, "
        f"{per_request_s * 1e9:.0f} ns of disabled guards per request "
        f"-> estimated overhead {overhead_s / storm_s:.3%} (limit 5%)"
    )
    assert overhead_s < 0.05 * storm_s
