"""Figure 7: average TPI vs. L1 D-cache size, fixed boundary."""

import pytest

from repro.experiments.cache_study import figure7
from repro.experiments.reporting import format_series


def _print_panel(title, panel):
    apps = sorted(panel)
    sizes = sorted(next(iter(panel.values())))
    series = {app: [panel[app][s] for s in sizes] for app in apps}
    print(f"\n{title}")
    print(format_series("L1 KB", sizes, series))


@pytest.mark.figure("7")
def test_bench_figure7(benchmark):
    panels = benchmark.pedantic(figure7, rounds=1, iterations=1)
    _print_panel("Figure 7(a): Avg TPI (ns) vs L1 size - integer", panels["integer"])
    _print_panel("Figure 7(b): Avg TPI (ns) vs L1 size - floating point", panels["floating"])

    # headline shape: the vast majority of applications favour 8-16 KB
    best = {
        app: min(curve, key=curve.get)
        for panel in panels.values()
        for app, curve in panel.items()
    }
    small = sum(1 for b in best.values() if b <= 16)
    assert small / len(best) > 0.5
