"""Online-controller bench: the oracle-free Section 4 mechanism.

The predictor policy of `test_bench_predictor.py` is fed the finished
interval's best-configuration label (oracle monitoring information).
This bench runs the honest version — an explore/exploit controller that
only ever sees the TPI of what it ran — and quantifies how much of the
oracle-fed gains survive.
"""

import pytest

from repro.core.controller import OnlineController, run_online
from repro.core.policies import StaticPolicy, evaluate_policy
from repro.experiments.interval_study import (
    cache_interval_study,
    figure12,
    figure13,
    predictor_study,
)
from repro.experiments.reporting import format_table


def _run_all():
    studies = {
        "turb3d (stable)": figure12(intervals_per_phase=40),
        "vortex (regular)": figure13(regular=True),
        "vortex (irregular)": figure13(regular=False),
        "cache (alternating)": cache_interval_study(),
    }
    rows = []
    for name, study in studies.items():
        windows = study.windows
        static = min(
            evaluate_policy(study.series, StaticPolicy(w)).tpi_ns for w in windows
        )
        oracle_fed = predictor_study(study).adaptive.tpi_ns
        online = run_online(study.series, OnlineController(windows), windows[0])
        rows.append([name, static, oracle_fed, online.tpi_ns,
                     online.n_switches, online.n_probes])
    return rows


@pytest.mark.figure("ext-online-controller")
def test_bench_online_controller(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print("\nOracle-fed predictor policy vs honest online controller (TPI, ns)")
    print(
        format_table(
            ["workload", "best static", "oracle-fed", "online", "sw", "probes"],
            rows,
        )
    )
    print(
        "The honest controller keeps most of the gains on stable/regular "
        "phases and bounds its loss on the adversarial workload — the rest "
        "of the oracle-fed gap is what richer monitoring hardware buys."
    )
    by_name = {r[0]: r for r in rows}
    # wins where phases are exploitable
    assert by_name["turb3d (stable)"][3] < by_name["turb3d (stable)"][1]
    assert by_name["vortex (regular)"][3] < by_name["vortex (regular)"][1]
    # bounded regret on the adversarial workload
    assert by_name["vortex (irregular)"][3] <= by_name["vortex (irregular)"][1] * 1.10
