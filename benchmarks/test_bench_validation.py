"""Validation bench: blocking analytic composition vs integrated OOO+cache."""

import pytest

from repro.experiments.reporting import format_table
from repro.experiments.validation import validation_sweep


@pytest.mark.figure("ext-validation")
def test_bench_integrated_vs_analytic(benchmark):
    sweep = benchmark.pedantic(
        validation_sweep,
        kwargs=dict(
            apps=("perl", "gcc", "stereo", "swim", "applu"),
            boundaries=(1, 2, 4, 6, 8),
            n_instructions=30_000,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for app, points in sweep.items():
        best_a = min(points, key=lambda p: p.analytic_tpi_ns)
        best_i = min(points, key=lambda p: p.integrated_tpi_ns)
        rows.append(
            [
                app,
                f"{8 * best_a.l1_increments}K",
                best_a.analytic_tpi_ns,
                f"{8 * best_i.l1_increments}K",
                best_i.integrated_tpi_ns,
                f"{best_i.overlap_recovery_percent:.0f}%",
            ]
        )
    print("\nBlocking analytic model vs integrated OOO+cache simulation")
    print(
        format_table(
            ["app", "analytic best L1", "TPI", "integrated best L1", "TPI",
             "overlap recovery"],
            rows,
        )
    )
    print(
        "The analytic (paper-methodology) model is conservative everywhere; "
        "for capacity-hungry apps the 64-entry window hides enough L2 "
        "latency to shift the optimal boundary toward the faster clock."
    )
    for points in sweep.values():
        for p in points:
            assert p.integrated_tpi_ns <= p.analytic_tpi_ns + 1e-9
