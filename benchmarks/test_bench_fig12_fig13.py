"""Figures 12 and 13: intra-application diversity snapshots."""

import numpy as np
import pytest

from repro.experiments.interval_study import figure12, figure13
from repro.experiments.reporting import format_table


def _print_snapshot(title, result, head=12):
    windows = result.windows
    rows = []
    for i in range(min(head, len(result.series[windows[0]]))):
        rows.append(
            [i] + [float(result.series[w].tpi_ns[i]) for w in windows]
        )
    print(f"\n{title} (first {head} intervals of {len(result.series[windows[0]])})")
    print(format_table(["interval"] + [f"{w} entries" for w in windows], rows))


@pytest.mark.figure("12")
def test_bench_figure12(benchmark):
    result = benchmark.pedantic(figure12, rounds=1, iterations=1)
    _print_snapshot("Figure 12: turb3d, 64 vs 128 entries", result)
    half = len(result.series[64]) // 2
    a64 = result.series[64].tpi_ns[:half].mean()
    a128 = result.series[128].tpi_ns[:half].mean()
    b64 = result.series[64].tpi_ns[half:].mean()
    b128 = result.series[128].tpi_ns[half:].mean()
    print(f"phase (a): 64={a64:.3f} 128={a128:.3f}  -> 64-entry better by "
          f"{(a128 - a64) / a128 * 100:.0f}% (paper: ~10%)")
    print(f"phase (b): 64={b64:.3f} 128={b128:.3f}  -> 128-entry better by "
          f"{(b64 - b128) / b64 * 100:.0f}% (paper: ~20%)")
    assert a64 < a128 and b128 < b64


@pytest.mark.figure("13a")
def test_bench_figure13a(benchmark):
    result = benchmark.pedantic(figure13, args=(True,), rounds=1, iterations=1)
    _print_snapshot("Figure 13(a): vortex (regular), 16 vs 64 entries", result)
    runs = result.stability_runs()
    long_runs = [length for _w, length in runs if length >= 5]
    print(f"best-config run lengths: {[l for _w, l in runs]} "
          f"(paper: alternation roughly every 15 intervals)")
    assert long_runs and 10 <= float(np.median(long_runs)) <= 20


@pytest.mark.figure("13b")
def test_bench_figure13b(benchmark):
    result = benchmark.pedantic(figure13, args=(False,), rounds=1, iterations=1)
    _print_snapshot("Figure 13(b): vortex (irregular), 16 vs 64 entries", result)
    m16 = result.series[16].mean_tpi_ns()
    m64 = result.series[64].mean_tpi_ns()
    seq = result.best_sequence()
    flips = int((seq[1:] != seq[:-1]).sum())
    print(f"means: 16={m16:.3f} 64={m64:.3f}; best-config flips: {flips}/{len(seq)} "
          f"(paper: near-random, equal averages)")
    assert abs(m16 - m64) / max(m16, m64) < 0.10
