"""Engine result cache: cold versus warm regeneration of Figure 9.

The cold run simulates every (application, boundary) sweep cell and
persists the payloads in a content-addressed cache; the warm run serves
all of them from disk.  The acceptance bar for the cache is a >= 5x
speedup with bitwise-identical tables — in practice the warm run is
orders of magnitude faster, since it reads a handful of small JSON
files instead of simulating millions of cache references.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.engine import ExperimentEngine
from repro.experiments.cache_study import figure8_9


@pytest.mark.figure("9 (warm engine cache)")
def test_bench_engine_warm_figure9(benchmark, tmp_path):
    cold_start = time.perf_counter()
    cold = figure8_9(engine=ExperimentEngine(jobs=1, cache_dir=tmp_path))
    cold_s = time.perf_counter() - cold_start

    def warm():
        return figure8_9(engine=ExperimentEngine(jobs=1, cache_dir=tmp_path))

    study = benchmark.pedantic(warm, rounds=3, iterations=1)

    # identical tables, not merely close ones
    assert study.tpi == cold.tpi
    assert study.tpi_miss == cold.tpi_miss
    assert study.best_boundaries == cold.best_boundaries

    warm_s = benchmark.stats.stats.min
    speedup = cold_s / warm_s
    print(
        f"\nFigure 9 cold {cold_s:.3f}s, warm {warm_s:.4f}s "
        f"-> {speedup:.0f}x speedup from the result cache"
    )
    assert speedup >= 5.0
