"""Analyzer budget: warm (cache-hit) whole-program lint of ``src/``.

The project pass parses, summarises and resolves the call graph of the
entire tree; the on-disk cache is what keeps that affordable on every
CI run and every editor save.  The acceptance bar: a warm run serves
everything from the cache, reproduces the cold findings exactly, beats
the cold run by >= 3x, and lands within an absolute wall budget.

Each run appends its analyzer wall-times to ``BENCH_lint.json`` next to
the service trajectory file, so analyzer regressions are visible over
the repo's history.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_lint.json"

#: Absolute ceiling for one warm whole-tree lint (CI hardware).
WARM_BUDGET_S = 5.0
#: Required cold/warm advantage from the analysis cache.
MIN_SPEEDUP = 3.0


def _append_bench(record: dict) -> None:
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except ValueError:
            history = []
    history.append(record)
    BENCH_PATH.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_bench_warm_lint_within_budget(benchmark, tmp_path):
    src = REPO_ROOT / "src"
    cache_dir = tmp_path / "lint-cache"

    cold_start = time.perf_counter()
    cold = lint_paths([src], cache_dir=cache_dir)
    cold_s = time.perf_counter() - cold_start

    def warm():
        return lint_paths([src], cache_dir=cache_dir)

    result = benchmark.pedantic(warm, rounds=3, iterations=1)

    # the cache is a pure accelerator: identical results, not stale ones
    assert result.findings == cold.findings
    assert result.suppressed == cold.suppressed
    assert result.files_checked == cold.files_checked
    assert result.cache_misses == 0  # everything served warm

    warm_s = benchmark.stats.stats.min
    speedup = cold_s / warm_s
    print(
        f"\nlint src cold {cold_s:.3f}s, warm {warm_s:.4f}s "
        f"-> {speedup:.0f}x speedup from the analysis cache "
        f"({result.files_checked} files, "
        f"{len(result.rule_ids)} rules, {result.cache_hits} cache hits)"
    )
    _append_bench(
        {
            "label": "lint-src",
            "ts": time.time(),
            "files_checked": result.files_checked,
            "rules": len(result.rule_ids),
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "speedup": round(speedup, 2),
            "warm_timings": {
                k: round(v, 6) for k, v in result.timings.items()
            },
            "cache": {
                "hits": result.cache_hits,
                "misses": result.cache_misses,
            },
            "passed": bool(speedup >= MIN_SPEEDUP and warm_s < WARM_BUDGET_S),
        }
    )
    assert warm_s < WARM_BUDGET_S
    assert speedup >= MIN_SPEEDUP
