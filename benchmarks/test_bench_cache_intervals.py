"""Beyond the paper: interval-level adaptivity for the cache boundary.

Section 6 studies intra-application diversity only for the queue; the
movable-boundary cache supports the same treatment, and this bench runs
it end to end on a workload alternating between a small hot working set
and a tiled 32 KB one.
"""

import pytest

from repro.experiments.interval_study import cache_interval_study, predictor_study
from repro.experiments.reporting import format_table
from repro.ooo.intervals import best_window_sequence


@pytest.mark.figure("ext-cache-intervals")
def test_bench_cache_interval_adaptivity(benchmark):
    study = benchmark.pedantic(cache_interval_study, rounds=1, iterations=1)
    ps = predictor_study(study, confidence_threshold=0.7)

    seq = best_window_sequence(study.series)
    print("\nInterval-level cache adaptivity (boundaries 2 = 16KB, 6 = 48KB)")
    print(f"best-boundary sequence: {list(map(int, seq))}")
    rows = [
        [f"static {8 * k}KB L1", outcome.tpi_ns, outcome.n_switches]
        for k, outcome in ps.static.items()
    ]
    rows.append(["predictor+confidence", ps.adaptive.tpi_ns, ps.adaptive.n_switches])
    rows.append(["oracle", ps.oracle.tpi_ns, ps.oracle.n_switches])
    print(format_table(["policy", "TPI (ns)", "switches"], rows))
    print(f"gain over best static: {ps.adaptive_gain_percent:.1f}%")

    assert ps.adaptive.tpi_ns < ps.best_static_tpi_ns
