"""Ablation benches: the design choices DESIGN.md calls out."""

import pytest

from repro.experiments.ablations import (
    confidence_threshold_sweep,
    flush_reconfiguration_ablation,
    increment_granularity_ablation,
    latency_mode_ablation,
    switch_cost_sensitivity,
)
from repro.experiments.interval_study import figure13
from repro.experiments.reporting import format_table


@pytest.mark.figure("ablation-granularity")
def test_bench_increment_granularity(benchmark):
    """Paper Sec 5.2.1: 8 KB 2-way increments vs 4 KB direct-mapped."""
    result = benchmark.pedantic(increment_granularity_ablation, rounds=1, iterations=1)
    print("\nIncrement granularity ablation (suite-average TPI, ns)")
    print(
        format_table(
            ["design", "cycle @16KB L1", "best conventional", "process-adaptive"],
            [
                ["8KB 2-way increments (paper)", result.paper_cycle_at_16kb,
                 result.paper_suite_tpi_ns, result.paper_adaptive_tpi_ns],
                ["4KB direct-mapped increments", result.fine_cycle_at_16kb,
                 result.fine_suite_tpi_ns, result.fine_adaptive_tpi_ns],
            ],
        )
    )
    # the paper's stated reason for its choice must reproduce
    assert result.paper_design_wins
    assert result.paper_cycle_at_16kb < result.fine_cycle_at_16kb


@pytest.mark.figure("ablation-latency-mode")
def test_bench_latency_mode(benchmark):
    """Paper Sec 3.1: slow the clock vs stretch the L1 latency."""
    result = benchmark.pedantic(latency_mode_ablation, rounds=1, iterations=1)
    winners = result.winners()
    rows = [
        [app, result.clock_mode_tpi[app], result.latency_mode_tpi[app], winners[app]]
        for app in sorted(result.clock_mode_tpi)
    ]
    print("\nLatency-vs-clock ablation (best TPI per app, ns)")
    print(format_table(["app", "clock mode", "latency mode", "winner"], rows))
    latency_wins = sum(1 for w in winners.values() if w == "latency")
    print(f"latency mode wins for {latency_wins}/{len(winners)} apps — consistent "
          "with the paper suggesting this option for the D-cache")
    assert latency_wins > len(winners) / 2


@pytest.mark.figure("ablation-flush")
def test_bench_flush_reconfiguration(benchmark):
    """What exclusion + constant mapping buy on a boundary move."""
    result = benchmark.pedantic(flush_reconfiguration_ablation, rounds=1, iterations=1)
    print(
        f"\nFlush-on-reconfigure ablation ({result.app}, one 16KB->48KB move):\n"
        f"  data-preserving move: {result.preserved_misses} misses\n"
        f"  naive flush:          {result.flushed_misses} misses\n"
        f"  flush penalty:        {result.extra_misses} extra misses "
        f"= {result.extra_miss_ns / 1000:.1f} us of stall"
    )
    assert result.extra_misses > 0


@pytest.mark.figure("ablation-confidence")
def test_bench_confidence_threshold(benchmark):
    """Section 6 knob: the confidence gate on the irregular workload."""
    irregular = figure13(regular=False)
    sweep = benchmark.pedantic(
        confidence_threshold_sweep, args=(irregular,), rounds=1, iterations=1
    )
    rows = [[t, o.tpi_ns, o.n_switches] for t, o in sorted(sweep.items())]
    print("\nConfidence threshold sweep (vortex irregular)")
    print(format_table(["threshold", "TPI (ns)", "switches"], rows))
    lo, hi = min(sweep), max(sweep)
    assert sweep[hi].n_switches <= sweep[lo].n_switches


@pytest.mark.figure("ablation-switch-cost")
def test_bench_switch_cost(benchmark):
    """Gains must erode as the clock-switch pause grows."""
    regular = figure13(regular=True)
    sweep = benchmark.pedantic(
        switch_cost_sensitivity, args=(regular,), rounds=1, iterations=1
    )
    rows = [[p, o.tpi_ns, o.n_switches] for p, o in sorted(sweep.items())]
    print("\nClock-switch pause sensitivity (vortex regular)")
    print(format_table(["pause (cycles)", "TPI (ns)", "switches"], rows))
    pauses = sorted(sweep)
    tpis = [sweep[p].tpi_ns for p in pauses]
    assert tpis == sorted(tpis)  # monotone erosion
