"""Figure 2: integer queue wire delay vs. entries and feature size."""

import pytest

from repro.experiments.reporting import format_series
from repro.experiments.wire_delay import figure2


@pytest.mark.figure("2")
def test_bench_figure2(benchmark):
    series = benchmark(figure2)
    print("\nFigure 2: integer queue wire delay (ns)")
    print(format_series(series.x_label, series.x_values, series.as_series_dict()))
    assert series.crossover(0.12) is not None and series.crossover(0.12) <= 32
