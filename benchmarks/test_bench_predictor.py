"""Section 6 extension: interval-adaptive prediction with confidence.

Not a figure in the paper — it is the mechanism the paper proposes as
future work, evaluated on the Figure 12/13 workloads: a pattern
predictor with a confidence gate against static configurations, the
ungated (always-switch) variant, and the switching oracle.
"""

import pytest

from repro.experiments.interval_study import figure12, figure13, predictor_study
from repro.experiments.reporting import format_table


def _run_all():
    results = {
        "turb3d (stable phases)": figure12(intervals_per_phase=40),
        "vortex (regular)": figure13(regular=True),
        "vortex (irregular)": figure13(regular=False),
    }
    return {name: predictor_study(r) for name, r in results.items()}


@pytest.mark.figure("sec6-predictor")
def test_bench_predictor_study(benchmark):
    studies = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for name, ps in studies.items():
        rows.append(
            [
                name,
                ps.best_static_tpi_ns,
                ps.adaptive.tpi_ns,
                ps.adaptive.n_switches,
                ps.adaptive_ungated.tpi_ns,
                ps.adaptive_ungated.n_switches,
                ps.oracle.tpi_ns,
            ]
        )
    print("\nSection 6 mechanism: achieved TPI (ns) under each policy")
    print(
        format_table(
            ["workload", "best static", "gated", "sw", "ungated", "sw", "oracle"],
            rows,
        )
    )

    for name, ps in studies.items():
        # the realisable policy never loses materially to process-level
        assert ps.adaptive.tpi_ns <= ps.best_static_tpi_ns * 1.05, name
        # and the oracle bounds everything from below
        assert ps.oracle.tpi_ns <= ps.adaptive.tpi_ns + 1e-9, name
    # on exploitable patterns it must WIN
    assert studies["vortex (regular)"].adaptive_gain_percent > 3.0
    assert studies["turb3d (stable phases)"].adaptive_gain_percent > 3.0
