"""Figures 8 and 9: best conventional vs. process-level adaptive cache.

Figure 8 reports TPImiss, Figure 9 total TPI, per application plus the
suite average — the cache study's headline comparison.
"""

import pytest

from repro.experiments.cache_study import figure8_9
from repro.experiments.reporting import format_table


@pytest.mark.figure("8+9")
def test_bench_figure8_and_9(benchmark):
    study = benchmark.pedantic(figure8_9, rounds=1, iterations=1)

    rows = []
    for app in study.tpi.applications:
        rows.append(
            [
                app,
                f"{8 * study.best_boundaries[app]}K",
                study.tpi_miss.conventional[app],
                study.tpi_miss.adaptive[app],
                study.tpi.conventional[app],
                study.tpi.adaptive[app],
            ]
        )
    rows.append(
        [
            "average",
            "-",
            study.tpi_miss.average_conventional(),
            study.tpi_miss.average_adaptive(),
            study.tpi.average_conventional(),
            study.tpi.average_adaptive(),
        ]
    )
    print(
        f"\nFigures 8/9: conventional = {study.conventional_l1_kb:.0f}KB "
        f"{2 * study.conventional_boundary}-way L1 (suite-best fixed boundary)"
    )
    print(
        format_table(
            ["app", "adaptive L1", "TPImiss conv", "TPImiss adapt",
             "TPI conv", "TPI adapt"],
            rows,
        )
    )
    print(
        f"average TPImiss reduction: {study.tpi_miss.average_reduction_percent():.1f}% "
        f"(paper: 26%)"
    )
    print(
        f"average TPI    reduction: {study.tpi.average_reduction_percent():.1f}% "
        f"(paper: 9%)"
    )

    assert study.conventional_boundary == 2  # the paper's 16 KB 4-way
    assert study.tpi.average_reduction_percent() > 5.0
    assert study.tpi_miss.average_reduction_percent() > study.tpi.average_reduction_percent()
    assert study.tpi.never_worse()
