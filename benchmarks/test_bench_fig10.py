"""Figure 10: average TPI vs. instruction queue size, fixed size."""

import pytest

from repro.experiments.queue_study import figure10
from repro.experiments.reporting import format_series


def _print_panel(title, panel):
    apps = sorted(panel)
    sizes = sorted(next(iter(panel.values())))
    series = {app: [panel[app][s] for s in sizes] for app in apps}
    print(f"\n{title}")
    print(format_series("entries", sizes, series))


@pytest.mark.figure("10")
def test_bench_figure10(benchmark):
    panels = benchmark.pedantic(figure10, rounds=1, iterations=1)
    _print_panel("Figure 10(a): Avg TPI (ns) vs queue size - integer", panels["integer"])
    _print_panel("Figure 10(b): Avg TPI (ns) vs queue size - floating point",
                 panels["floating"])

    best = {
        app: min(curve, key=curve.get)
        for panel in panels.values()
        for app, curve in panel.items()
    }
    assert best["compress"] == 128
    for app in ("radar", "fpppp", "appcg"):
        assert best[app] == 16
