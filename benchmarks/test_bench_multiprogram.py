"""Multiprogramming bench: the OS context-switch scheme, simulated.

Runs a three-process mix over one shared adaptive cache, restoring each
process's configuration registers on every switch, and compares against
the conventional machine that never reconfigures — validating the
paper's claim that process-level reconfiguration overhead "does not
pose a noticeable performance penalty".
"""

import pytest

from repro.core.multiprogram import adaptive_vs_conventional_mix
from repro.experiments.reporting import format_table


@pytest.mark.figure("ext-multiprogram")
def test_bench_multiprogrammed_mix(benchmark):
    adaptive, conventional = benchmark.pedantic(
        adaptive_vs_conventional_mix,
        args=({"perl": 2, "stereo": 6, "appcg": 7},),
        rounds=1,
        iterations=1,
    )
    rows = [
        ["conventional (16KB L1 always)", conventional.tpi_ns,
         conventional.reconfiguration_overhead_ns,
         conventional.n_context_switches],
        ["per-process adaptive", adaptive.tpi_ns,
         adaptive.reconfiguration_overhead_ns, adaptive.n_context_switches],
    ]
    print("\nMultiprogrammed mix (perl + stereo + appcg, shared cache)")
    print(format_table(["machine", "TPI (ns)", "reconfig overhead (ns)",
                        "switches"], rows))
    gain = (conventional.tpi_ns - adaptive.tpi_ns) / conventional.tpi_ns * 100
    print(f"adaptive gain: {gain:.1f}%; overhead share "
          f"{adaptive.overhead_fraction:.4%} of runtime")
    assert adaptive.tpi_ns < conventional.tpi_ns
    assert adaptive.overhead_fraction < 0.01
