"""Extension benches: TLB, branch predictor, and all structures in concert."""

import pytest

from repro.branch.predictors import PredictorKind
from repro.experiments.extended_structures import (
    branch_study,
    concert_study,
    tlb_study,
)
from repro.experiments.reporting import format_table


@pytest.mark.figure("ext-tlb")
def test_bench_tlb_study(benchmark):
    study = benchmark.pedantic(tlb_study, rounds=1, iterations=1)
    rows = [
        [app, study.best_configs[app], study.tpi.conventional[app],
         study.tpi.adaptive[app]]
        for app in study.tpi.applications
    ]
    print(f"\nAdaptive TLB study: conventional fast section = "
          f"{study.conventional_config} entries")
    print(format_table(["app", "best fast entries", "TPI conv", "TPI adapt"], rows))
    print(f"average TPI reduction: {study.tpi.average_reduction_percent():.1f}%")
    assert study.tpi.never_worse()
    # applications genuinely diverge in their fast-section demand
    assert len(set(study.best_configs.values())) >= 3


@pytest.mark.figure("ext-bpred")
def test_bench_branch_study(benchmark):
    def both():
        return {
            kind: branch_study(kind)
            for kind in (PredictorKind.GSHARE, PredictorKind.BIMODAL)
        }

    studies = benchmark.pedantic(both, rounds=1, iterations=1)
    for kind, study in studies.items():
        print(f"\nAdaptive {kind.value} predictor: conventional table = "
              f"{study.conventional_config} entries, "
              f"avg TPI reduction {study.tpi.average_reduction_percent():.1f}%")
    gshare, bimodal = studies[PredictorKind.GSHARE], studies[PredictorKind.BIMODAL]
    rows = [
        [app, gshare.tpi.adaptive[app], bimodal.tpi.adaptive[app]]
        for app in gshare.tpi.applications
    ]
    print(format_table(["app", "gshare best TPI", "bimodal best TPI"], rows))
    # history capture must pay on the pattern-heavy integer codes
    assert gshare.tpi.adaptive["li"] < bimodal.tpi.adaptive["li"]
    for study in studies.values():
        assert study.tpi.never_worse()


@pytest.mark.figure("ext-concert")
def test_bench_concert_study(benchmark):
    study = benchmark.pedantic(concert_study, rounds=1, iterations=1)
    conv = study.conventional
    print(
        f"\nAll structures in concert: conventional = "
        f"(L1 {8 * conv.cache_boundary}KB, queue {conv.queue_entries}, "
        f"TLB fast {conv.tlb_fast_entries}, predictor {conv.predictor_entries})"
    )
    reductions = study.tpi.per_app_reduction_percent()
    rows = [
        [
            app,
            f"{8 * cfg.cache_boundary}K",
            cfg.queue_entries,
            cfg.tlb_fast_entries,
            cfg.predictor_entries,
            f"{reductions[app]:.1f}%",
        ]
        for app, cfg in study.best_configs.items()
    ]
    print(format_table(["app", "L1", "queue", "TLB fast", "bpred", "TPI red."], rows))
    print(f"average joint TPI reduction: {study.tpi.average_reduction_percent():.1f}%")
    print(
        f"Section 5.4 interaction: {study.dominated_fraction:.0%} of cache "
        "boundaries cannot change the clock under the conventional queue"
    )
    assert study.tpi.never_worse()
    assert study.tpi.average_reduction_percent() > 2.0
    assert 0.0 < study.dominated_fraction < 1.0
